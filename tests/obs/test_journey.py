"""Per-packet journey tracing: exactness, sampling, ground truth.

The heart of the PR 3 acceptance criteria: on a scripted 3-MN channel every
hop's old→new rewrite tuple must equal the MC's installed rules, multicast
decoy copies must be labeled exactly (in the journey tree, never in
``delivered_uids``), and sampling must be deterministic without touching
the RNG.
"""

import itertools

import pytest

from repro.core import channel, controller, deploy_mic
from repro.net import (
    FlowEntry,
    Group,
    GroupEntry,
    Match,
    Network,
    Output,
    SetField,
    flowtable,
    linear,
    packet,
)
from repro.obs import (
    FlightRecorder,
    JourneyRecorder,
    format_hop_table,
    journey_event_kinds,
    journeys_to_json,
)

MESSAGE = b"z" * 200


def _reset_id_counters():
    packet._uid_counter = itertools.count(1)
    packet._tag_counter = itertools.count(1)
    flowtable._entry_counter = itertools.count(1)
    channel._channel_ids = itertools.count(1)
    controller._group_ids = itertools.count(1)
    controller._cookie_ids = itertools.count(0x4D49_0000)


def _addr_tuple(a):
    return (str(a.src_ip), str(a.dst_ip), a.sport, a.dport, a.mpls)


def _mic_echo(journey_kwargs=None, decoys=0, seed=13):
    """A journey-traced MIC echo h1 <-> h16; intent armed mid-run."""
    _reset_id_counters()
    dep = deploy_mic(seed=seed, journey=True, journey_kwargs=journey_kwargs)
    server = dep.server("h16", 80)
    alice = dep.endpoint("h1")

    def client():
        stream = yield from alice.connect(
            "h16", service_port=80, n_mns=3, decoys=decoys
        )
        dep.journey.arm_intent(dep.mic)
        stream.send(MESSAGE)
        yield from stream.recv_exactly(len(MESSAGE))

    def srv():
        stream = yield server.accept()
        data = yield from stream.recv_exactly(len(MESSAGE))
        stream.send(data)

    dep.sim.process(client())
    dep.sim.process(srv())
    dep.run_for(5.0)
    return dep


# ---------------------------------------------------------------------------
# exact rewrite chains on a 3-MN channel
# ---------------------------------------------------------------------------


def test_exact_rewrite_chain_matches_installed_rules():
    """Every forward-delivered journey's hop-by-hop old→new tuples equal the
    MC's planned (and installed) per-MN rewrites, in order."""
    dep = _mic_echo()
    plan = next(iter(dep.mic.channels.values())).flows[0]
    expected = [
        (
            plan.walk[pos],
            _addr_tuple(plan.fwd_addrs[i]),
            _addr_tuple(plan.fwd_addrs[i + 1]),
        )
        for i, pos in enumerate(plan.mn_positions)
    ]
    assert len(expected) == 3  # n_mns=3: three rewriting hops

    forward = [
        j for j in dep.journey.journeys_by_content_tag().values()
        if j.origin() == "h1" and j.delivered_to() == ["h16"]
    ]
    assert forward, "no forward-delivered journeys recorded"
    for j in forward:
        assert j.rewrite_chain() == expected
        for e in j.rewrites():
            assert e.detail["cookie"] == plan.cookie

    # The reverse direction inverts the mirrored address ladder.
    rev_positions = sorted(len(plan.walk) - 1 - p for p in plan.mn_positions)
    rwalk = list(reversed(plan.walk))
    expected_rev = [
        (rwalk[pos], _addr_tuple(plan.rev_addrs[i]), _addr_tuple(plan.rev_addrs[i + 1]))
        for i, pos in enumerate(rev_positions)
    ]
    backward = [
        j for j in dep.journey.journeys_by_content_tag().values()
        if j.delivered_to() == ["h1"] and j.origin() == "h16"
    ]
    assert backward
    for j in backward:
        assert j.rewrite_chain() == expected_rev


def test_intent_armed_healthy_channel_never_diverges():
    dep = _mic_echo()
    assert dep.journey._intent_armed
    for j in dep.journey.journeys_by_content_tag().values():
        assert j.by_kind("switch.divergence") == []


def test_journey_paths_follow_the_plan_walk():
    dep = _mic_echo()
    plan = next(iter(dep.mic.channels.values())).flows[0]
    forward = [
        j for j in dep.journey.journeys_by_content_tag().values()
        if j.origin() == "h1" and j.delivered_to() == ["h16"]
    ]
    assert forward
    for j in forward:
        assert j.path() == plan.walk
        assert j.origin() == "h1"
        assert j.total_latency_s() > 0


# ---------------------------------------------------------------------------
# multicast decoys: the journey is a tree with exact labels
# ---------------------------------------------------------------------------


def test_multicast_decoy_copies_are_labeled_exactly():
    dep = _mic_echo(decoys=2)
    forward = [
        j for j in dep.journey.journeys_by_content_tag().values()
        if "h16" in j.delivered_to()
    ]
    assert forward
    branched = [j for j in forward if len(j.uids()) > 1]
    assert branched, "decoys produced no multicast copies"
    for j in branched:
        delivered = j.delivered_uids()
        assert delivered < j.uids()  # strict: decoy instances exist
        # every host.rx instance is on the delivered lineage...
        for e in j.by_kind("host.rx"):
            assert e.uid in delivered
        # ...and no decoy instance ever reaches a host NIC as "delivered"
        decoy_uids = j.uids() - delivered
        assert decoy_uids
        for e in j.by_kind("host.rx"):
            assert e.uid not in decoy_uids
        # the parent links stitch every copy back to one recorded instance
        parents = j.parent_map()
        for uid in decoy_uids:
            assert uid in parents or any(
                e.uid == uid and e.kind != "switch.egress" for e in j.events
            )


# ---------------------------------------------------------------------------
# sampling
# ---------------------------------------------------------------------------


def test_sample_rate_zero_records_nothing():
    dep = _mic_echo(journey_kwargs={"sample_rate": 0.0})
    assert dep.journey.journeys_by_content_tag() == {}
    assert dep.journey.events_recorded == 0


def test_predicate_selects_flows():
    """A per-flow predicate sees the first packet of each wire content and
    its decision sticks for every copy/rewrite of that content."""
    seen = []

    def big_only(pkt):
        seen.append(pkt.content_tag)
        return pkt.payload_size >= 100

    dep = _mic_echo(journey_kwargs={"predicate": big_only})
    journeys = dep.journey.journeys_by_content_tag()
    assert journeys  # the MESSAGE-carrying segments matched
    # decisions were memoized: one predicate call per content tag
    assert len(seen) == len(set(seen))
    # only big packets were retained — control/handshake journeys filtered
    dep_full = _mic_echo()
    assert len(journeys) < len(dep_full.journey.journeys_by_content_tag())
    for j in journeys.values():
        first = j.events[0]
        assert first.detail.get("size", 0) >= 100


def test_hash_sampling_is_deterministic_and_rng_free():
    _reset_id_counters()
    net = Network(linear(2, hosts_per_switch=1), seed=9)
    rec = JourneyRecorder.attach(net, sample_rate=0.5)
    h1, h2 = net.host("h1"), net.host("h2")
    rng_state_before = repr(net.sim.rng().getstate())
    pkts = [h1.make_packet(h2.ip, dport=80) for _ in range(400)]
    decisions = [rec.wants(p) for p in pkts]
    # decision memoized & repeatable
    assert [rec.wants(p) for p in pkts] == decisions
    # roughly the requested rate (crc32 is uniform enough for 400 tags)
    frac = sum(decisions) / len(decisions)
    assert 0.35 < frac < 0.65
    # and the sim's RNG streams were never touched
    assert repr(net.sim.rng().getstate()) == rng_state_before

    # the same tags give the same decisions in a fresh recorder
    rec2 = JourneyRecorder(net, sample_rate=0.5)
    assert [rec2.wants(p) for p in pkts] == decisions


def test_bad_sample_rate_rejected():
    net = Network(linear(2, hosts_per_switch=1), seed=9)
    with pytest.raises(ValueError):
        JourneyRecorder(net, sample_rate=1.5)


# ---------------------------------------------------------------------------
# scripted divergence + every contracted kind is emittable
# ---------------------------------------------------------------------------


def _scripted_chain(seed=4):
    """linear(3) with a rewrite at s2 and a decoy branch toward h2."""
    _reset_id_counters()
    net = Network(linear(3, hosts_per_switch=1), seed=seed)
    h1, h2, h3 = net.host("h1"), net.host("h2"), net.host("h3")
    net.switch("s1").table.install(
        FlowEntry(Match(ip_dst=h3.ip), [Output(net.port("s1", "s2"))])
    )
    net.switch("s2").table.install_group(
        GroupEntry(
            group_id=1,
            buckets=[
                [SetField("ip_src", h2.ip), Output(net.port("s2", "s3"))],
                [Output(net.port("s2", "h2"))],  # decoy: dies at h2's NIC
            ],
        )
    )
    net.switch("s2").table.install(
        FlowEntry(Match(ip_dst=h3.ip), [Group(1)])
    )
    net.switch("s3").table.install(
        FlowEntry(
            Match(ip_dst=h3.ip),
            # unicast in-place rewrite: exercises switch.rewrite (the group
            # bucket's SetField only shows on per-copy egress headers)
            [SetField("sport", 4321), Output(net.port("s3", "h3"))],
        )
    )
    h3.bind("tcp", 80, lambda host, p: None)
    return net, h1, h2, h3


def test_scripted_group_journey_tree_and_foreign_drop():
    net, h1, h2, h3 = _scripted_chain()
    rec = JourneyRecorder.attach(net)
    h1.send_packet(h1.make_packet(h3.ip, sport=1234, dport=80, payload_size=64))
    net.run()
    (j,) = rec.journeys_by_content_tag().values()
    assert j.delivered_to() == ["h3"]
    # the decoy copy foreign-dropped at h2 with the original dst address
    (drop,) = j.by_kind("host.foreign_drop")
    assert drop.where == "h2"
    assert drop.uid not in j.delivered_uids()
    # two copies left s2, both children of the ingress instance
    (ingress,) = [e for e in j.by_kind("switch.ingress") if e.where == "s2"]
    egress = [e for e in j.by_kind("switch.egress") if e.where == "s2"]
    assert len(egress) == 2
    assert all(e.detail["parent_uid"] == ingress.uid for e in egress)
    # the bucket rewrite shows up on the real copy's egress header
    headers = {e.detail["header"] for e in egress}
    assert (str(h2.ip), str(h3.ip), 1234, 80, None) in headers  # rewritten
    assert (str(h1.ip), str(h3.ip), 1234, 80, None) in headers  # decoy


def test_scripted_divergence_fires_and_dumps():
    net, h1, h2, h3 = _scripted_chain()
    flight = FlightRecorder(capacity=8)
    rec = JourneyRecorder.attach(net, flight=flight)
    in_tuple = (str(h1.ip), str(h3.ip), 7777, 80, None)
    rec.expect("s2", in_tuple, (str(h1.ip), str(h3.ip), 7777, 9999, None))
    h1.send_packet(h1.make_packet(h3.ip, sport=7777, dport=80, payload_size=64))
    net.run()
    (j,) = rec.journeys_by_content_tag().values()
    (div,) = j.by_kind("switch.divergence")
    assert div.where == "s2"
    assert tuple(div.detail["old"]) == in_tuple
    assert tuple(div.detail["expected"]) == (str(h1.ip), str(h3.ip), 7777, 9999, None)
    # the emitted headers are reported so the operator sees what DID happen
    assert (str(h2.ip), str(h3.ip), 7777, 80, None) in [
        tuple(h) for h in div.detail["emitted"]
    ]
    # ... and the flight recorder dumped on it
    assert [d.trigger for d in flight.dumps] == ["divergence"]
    assert flight.dumps[0].cause.kind == "switch.divergence"


def test_every_contracted_kind_is_emitted_by_the_composite_scenario():
    """Across the scripted chain (+ttl, +miss, +down-link) and a decoy MIC
    echo, every kind in JOURNEY_EVENTS fires at least once — no dead rows
    in the doc table."""
    net, h1, h2, h3 = _scripted_chain()
    flight = FlightRecorder(capacity=8)
    rec = JourneyRecorder.attach(net, flight=flight)
    rec.expect("s2", (str(h1.ip), str(h3.ip), 1, 80, None),
               (str(h1.ip), str(h3.ip), 1, 2, None))
    # normal delivery (+ the injected divergence) ...
    h1.send_packet(h1.make_packet(h3.ip, sport=1, dport=80, payload_size=64))
    # ... a TTL death at s1 ...
    dying = h1.make_packet(h3.ip, sport=2, dport=80, payload_size=64)
    dying.ttl = 1
    h1.send_packet(dying)
    # ... a table miss (no rule for this destination anywhere) ...
    h1.send_packet(h1.make_packet(h2.ip, sport=3, dport=80, payload_size=64))
    net.run()
    # ... and a drop on a downed link.
    net.link_between("s2", "s3").set_up(False)
    h1.send_packet(h1.make_packet(h3.ip, sport=4, dport=80, payload_size=64))
    net.run()

    kinds = {
        e.kind
        for j in rec.journeys_by_content_tag().values()
        for e in j.events
    }
    # link.down is not packet-scoped: it reaches the flight rings (where
    # the link_down trigger sees it), never a packet's journey.
    kinds |= {
        e.kind for where in flight.locations() for e in flight.ring(where)
    }
    assert kinds == journey_event_kinds()

    # The dump/summarize pipeline renders this composite without loss.
    doc = journeys_to_json(rec, flight)
    table = format_hop_table(doc)
    assert "journeys" in doc and doc["journeys"]
    assert "flight dumps" in table
    assert "h1 -> s1 -> s2 -> s3 -> h3" in table
