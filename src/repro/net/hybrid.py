"""Hybrid fluid/packet simulation engine.

Packet-level simulation of a fat-tree carrying thousands of bulk m-flows
spends almost all of its events on packets whose individual fates are
uninteresting: long transfers settle at a bandwidth-sharing fixed point.
The hybrid engine moves that bulk to **fluid fidelity** — each flow is a
rate advanced once per epoch by the incremental max-min solver
(:class:`~repro.net.fluid.FluidSolver`) — while a sampled subset, plus
anything an observer actually needs to see packet-by-packet, stays on the
packet engine.

The two fidelities meet at an explicit, contracted boundary
(``docs/scale.md`` carries the same table, test-diffed both ways):

* fluid background load debits the serialization bandwidth packet flows
  see on shared links (:meth:`Channel.effective_bandwidth_bps`);
* packet-level bytes measured on shared links are debited from the
  capacity the fluid allocation may fill (``FluidSolver.set_external_load``),
  one epoch behind (measure-then-apply).

Epoch advancement rides :class:`~repro.sim.Periodic` — one heap event per
epoch regardless of flow count.  The ticker starts lazily with the first
fluid flow and stops when the last one finishes, so an engine with no
fluid flows (sample rate 1.0) schedules nothing and the run stays
byte-identical to a bare packet engine — the same opt-in guarantee every
prior layer (obs, faults, lint) ships with.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..sim import Event, Periodic, SimulationError
from .fluid import FluidSolver

if TYPE_CHECKING:  # pragma: no cover
    from .link import Channel
    from .network import Network

__all__ = [
    "HANDOFF_CONTRACT",
    "PACKET_PINS",
    "WIRE_EFFICIENCY",
    "FluidTransfer",
    "HandoffInvariant",
    "HybridEngine",
    "PacketPin",
    "format_handoff_table",
    "format_pin_table",
]

#: TCP goodput per wire byte: MSS 1460 over 1514 on-the-wire bytes
#: (ETH 14 + IP 20 + TCP 20 headers).  Fluid flows advance *wire* bytes so
#: their rates are comparable with packet-level link counters; goodput is
#: reported through this factor.
WIRE_EFFICIENCY = 1460.0 / 1514.0


# ---------------------------------------------------------------------------
# The fidelity-boundary contract.  docs/scale.md embeds the rendered tables;
# tests/net/test_scale_contract.py diffs them both ways.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class HandoffInvariant:
    """One registered invariant of the fluid/packet hand-off."""

    name: str
    statement: str


HANDOFF_CONTRACT: tuple[HandoffInvariant, ...] = (
    HandoffInvariant(
        "background-load",
        "Fluid link loads are published to `Channel.fluid_load_bps` every "
        "epoch; packet serialization and backlog estimates use "
        "`effective_bandwidth_bps = max(capacity - fluid_load, 1% floor)`.",
    ),
    HandoffInvariant(
        "peer-share",
        "A pinned packet flow registered via `HybridEngine.peer_flow` joins "
        "the max-min allocation as a first-class flow; its reservation — "
        "its share in a nominal solve over raw capacities, without external "
        "debits — is excluded from the measured debit and from the "
        "published fluid load, so pinned flows converge to fair shares "
        "against the fluid background instead of starving it or being "
        "starved.",
    ),
    HandoffInvariant(
        "capacity-debit",
        "Packet-level bytes carried on a fluid-shared link are measured per "
        "epoch and debited — net of reserved peer shares — from the "
        "capacity the fluid allocation may fill "
        "(`FluidSolver.set_external_load`).",
    ),
    HandoffInvariant(
        "conservation",
        "Packet bytes measured at the boundary equal the bytes the shared "
        "channels' counters carried over the same epochs "
        "(`HybridEngine.debited_bytes`, test-enforced).",
    ),
    HandoffInvariant(
        "epoch-churn",
        "Flow add/finish, link capacity changes and external-load updates "
        "dirty the allocation; rates re-solve lazily at the next epoch tick, "
        "so quiet epochs cost one advance pass and zero solves.",
    ),
    HandoffInvariant(
        "interpolated-finish",
        "A fluid flow finishing mid-epoch gets its finish time interpolated "
        "from its last allocated rate, not rounded to the epoch edge; its "
        "`done` event fires at the tick that observes completion.",
    ),
    HandoffInvariant(
        "no-fluid-no-op",
        "With zero fluid flows the engine schedules nothing and every "
        "`fluid_load_bps` is 0.0, so a sample-rate-1.0 hybrid run is "
        "byte-identical to the bare packet engine (test-enforced).",
    ),
    HandoffInvariant(
        "fluid-blindness",
        "Fluid flows emit no packets: journeys, traces, switch counters and "
        "attack observers cannot see them.  Any flow a subsystem must "
        "observe packet-by-packet is pinned to packet fidelity instead.",
    ),
)


@dataclass(frozen=True)
class PacketPin:
    """One subsystem that forces flows to packet fidelity."""

    subsystem: str
    trigger: str
    effect: str


PACKET_PINS: tuple[PacketPin, ...] = (
    PacketPin(
        "operator",
        "`pin_node`/`pin_nodes` named a flow endpoint, or the engine's "
        "sample hash selected the flow id",
        "flow runs packet-level from the start",
    ),
    PacketPin(
        "journey",
        "a `repro.obs.journey.JourneyRecorder` with live hooks is attached "
        "to the fabric's channels",
        "all new flows pin (fluid flows would be invisible to journeys)",
    ),
    PacketPin(
        "fault",
        "`pin_from_schedule` registered the endpoints named by a fault "
        "schedule's link-flap/crash/partition specs",
        "flows touching fault-targeted nodes run packet-level",
    ),
    PacketPin(
        "attack",
        "`pin_from_schedule` / `pin_nodes` covering adversary-observed "
        "vantage nodes (compromised switches, probe endpoints)",
        "probed flows stay visible to `repro.attacks` observers",
    ),
)


def format_handoff_table(invariants: Iterable[HandoffInvariant]) -> str:
    """Render hand-off invariants as the markdown table docs embed."""
    lines = [
        "| invariant | statement |",
        "| --- | --- |",
    ]
    for inv in invariants:
        lines.append(f"| `{inv.name}` | {inv.statement} |")
    return "\n".join(lines)


def format_pin_table(pins: Iterable[PacketPin]) -> str:
    """Render packet-pin subsystems as the markdown table docs embed."""
    lines = [
        "| subsystem | trigger | effect |",
        "| --- | --- | --- |",
    ]
    for pin in pins:
        lines.append(f"| `{pin.subsystem}` | {pin.trigger} | {pin.effect} |")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fluid flow handle
# ---------------------------------------------------------------------------
class FluidTransfer:
    """Handle for one bulk transfer advanced at fluid fidelity.

    ``payload_bytes`` is application goodput (what an iperf-style workload
    reports); the engine advances ``wire_bytes = payload / WIRE_EFFICIENCY``
    against the allocated link rate so fluid and packet link counters are
    commensurable.  ``done`` is a sim :class:`~repro.sim.Event` succeeding
    with this handle when the transfer completes.
    """

    __slots__ = (
        "flow_id",
        "path",
        "payload_bytes",
        "wire_bytes",
        "advanced_bytes",
        "started_s",
        "finished_s",
        "done",
    )

    def __init__(
        self,
        flow_id: str,
        path: Sequence[str],
        payload_bytes: int,
        started_s: float,
        done: Event,
    ):
        self.flow_id = flow_id
        self.path = tuple(path)
        self.payload_bytes = payload_bytes
        self.wire_bytes = payload_bytes / WIRE_EFFICIENCY
        self.advanced_bytes = 0.0
        self.started_s = started_s
        self.finished_s: Optional[float] = None
        self.done = done

    @property
    def finished(self) -> bool:
        """True once the engine observed this transfer complete."""
        return self.finished_s is not None

    def goodput_bps(self) -> float:
        """Application goodput over the transfer's lifetime (finished only)."""
        if self.finished_s is None:
            raise SimulationError(f"flow {self.flow_id} has not finished")
        duration = self.finished_s - self.started_s
        if duration <= 0:
            return float("inf")
        return self.payload_bytes * 8.0 / duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"done@{self.finished_s:.6f}" if self.finished else "live"
        return f"FluidTransfer({self.flow_id}, {self.payload_bytes}B, {state})"


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------
class HybridEngine:
    """Epoch-driven fluid rate advancement over a live :class:`Network`.

    ``sample_rate`` is the fraction of candidate flows kept at **packet**
    fidelity, decided by a seed-free hash of the flow id
    (:meth:`fidelity_for`) so the choice is stable across runs and
    processes.  1.0 pins everything (byte-identical mode); 0.0 pins nothing
    beyond the registered packet pins.
    """

    def __init__(
        self,
        net: "Network",
        epoch_s: float = 0.010,
        sample_rate: float = 0.0,
    ):
        if epoch_s <= 0:
            raise SimulationError(f"epoch_s must be > 0, got {epoch_s}")
        if not 0.0 <= sample_rate <= 1.0:
            raise SimulationError(f"sample_rate must be in [0,1], got {sample_rate}")
        if net.hybrid is not None:
            raise SimulationError("network already has a hybrid engine attached")
        self.net = net
        self.epoch_s = epoch_s
        self.sample_rate = sample_rate
        self.solver = FluidSolver()
        #: mirror of the flow set over raw capacities (no external debits):
        #: source of the non-circular peer reservations (``peer-share`` row)
        self._nominal = FluidSolver()
        #: directed channel registry keyed by the solver's link id
        self._channels: dict[str, "Channel"] = {}
        for link in net.links:
            for ch in (link.forward, link.reverse):
                self._channels[ch.name] = ch
                self.solver.add_link(ch.name, ch.bandwidth_bps)
                self._nominal.add_link(ch.name, ch.bandwidth_bps)
        self._ticker = Periodic(net.sim, epoch_s, self._epoch_tick)
        self._flows: dict[str, FluidTransfer] = {}
        #: registered packet peers: solver flow id -> link ids on its path
        self._peers: dict[str, tuple[str, ...]] = {}
        #: per-link bandwidth reserved for peers at the last solve
        self._peer_reserved: dict[str, float] = {}
        self._rates: dict[str, float] = {}
        #: channels traversed by >=1 live fluid flow (hand-off boundary)
        self._shared: dict[str, int] = {}
        #: packet byte counters at the last epoch tick, per shared channel
        self._pkt_marks: dict[str, int] = {}
        self._last_tick_s = net.sim.now
        self._pinned_nodes: set[str] = set()
        self._flow_seq = 0
        self._peer_seq = 0
        #: opt-in self-profiler (repro.obs.prof.Profiler); None = off and
        #: the epoch-phase hooks are statically dead.
        self._prof = None
        # -- counters surfaced through the obs contract --
        self.epochs = 0
        self.finished_flows = 0
        self.bytes_advanced = 0.0
        self.debited_bytes = 0.0
        net.hybrid = self

    # -- fidelity decisions -------------------------------------------------
    def pin_node(self, name: str) -> None:
        """Pin every flow touching ``name`` to packet fidelity."""
        self._pinned_nodes.add(name)

    def pin_nodes(self, names: Iterable[str]) -> None:
        """Pin every flow touching any of ``names`` to packet fidelity."""
        self._pinned_nodes.update(names)

    def pin_from_schedule(self, schedule) -> int:
        """Pin the endpoints a fault schedule targets; returns pins added.

        Reads the declarative specs (``LinkFlap.a/b``, ``SwitchCrash.switch``,
        ``ControlPartition.switch`` …) rather than compiled events, so it
        works before or after ``schedule.attach``.
        """
        before = len(self._pinned_nodes)
        for spec in getattr(schedule, "specs", ()):
            for attr in ("a", "b", "switch"):
                name = getattr(spec, attr, None)
                if isinstance(name, str):
                    self._pinned_nodes.add(name)
        return len(self._pinned_nodes) - before

    @property
    def pinned_nodes(self) -> frozenset[str]:
        """The operator/fault/attack pinned node set."""
        return frozenset(self._pinned_nodes)

    def _journey_live(self) -> bool:
        """True when a journey recorder hooked the fabric's channels."""
        for link in self.net.links:
            if link.forward.journey is not None or link.reverse.journey is not None:
                return True
        return False

    def fidelity_for(self, flow_id: str, path: Sequence[str] = ()) -> str:
        """``"packet"`` or ``"fluid"`` for one candidate flow.

        Deterministic and seed-free: the sample decision hashes the flow id
        (crc32 → [0,1)), so the same id lands on the same side of the
        boundary in every run and process.  Registered pins override the
        sample (see :data:`PACKET_PINS`).
        """
        if self.sample_rate >= 1.0:
            return "packet"
        if self._pinned_nodes and any(n in self._pinned_nodes for n in path):
            return "packet"
        if self._journey_live():
            return "packet"
        draw = zlib.crc32(flow_id.encode("utf-8")) / 2**32
        if draw < self.sample_rate:
            return "packet"
        return "fluid"

    # -- flow lifecycle -----------------------------------------------------
    def _channels_on(self, path: Sequence[str]) -> list["Channel"]:
        chans: list["Channel"] = []
        for a, b in zip(path, path[1:]):
            link = self.net.link_between(a, b)
            ch = link.forward if link.forward.src.name == a else link.reverse
            chans.append(ch)
        return chans

    def start_flow(
        self,
        path: Sequence[str],
        payload_bytes: int,
        flow_id: Optional[str] = None,
        rate_cap_bps: Optional[float] = None,
    ) -> FluidTransfer:
        """Start one fluid transfer along ``path`` (node names, src→dst).

        The first flow starts the epoch ticker; the allocation re-solves at
        the next tick.  Returns the :class:`FluidTransfer` handle.
        """
        if len(path) < 2:
            raise SimulationError("fluid flow path needs at least two nodes")
        if payload_bytes <= 0:
            raise SimulationError("payload_bytes must be > 0")
        if flow_id is None:
            flow_id = f"fluid-{self._flow_seq}"
        self._flow_seq += 1
        if flow_id in self._flows:
            raise SimulationError(f"duplicate fluid flow id {flow_id!r}")
        chans = self._channels_on(path)
        link_ids = [c.name for c in chans]
        self.solver.add_flow(flow_id, link_ids, rate_cap_bps=rate_cap_bps)
        self._nominal.add_flow(flow_id, link_ids, rate_cap_bps=rate_cap_bps)
        done = Event(self.net.sim)
        fc = FluidTransfer(flow_id, path, payload_bytes, self.net.sim.now, done)
        self._flows[flow_id] = fc
        for c in chans:
            n = self._shared.get(c.name, 0)
            self._shared[c.name] = n + 1
            if n == 0:
                self._pkt_marks[c.name] = c.stats.bytes
        if not self._ticker.running:
            self._last_tick_s = self.net.sim.now
            self._ticker.start()
        return fc

    @property
    def live_flows(self) -> int:
        """Number of fluid flows currently advancing."""
        return len(self._flows)

    # -- packet peers -------------------------------------------------------
    def peer_flow(
        self,
        path: Sequence[str],
        flow_id: Optional[str] = None,
        rate_cap_bps: Optional[float] = None,
    ) -> str:
        """Register a pinned packet flow as a max-min peer; returns its id.

        The peer's allocated share is reserved out of the fluid load its
        links publish, so the packet flow's own congestion control can fill
        that share instead of fighting the fluid background (the
        ``peer-share`` invariant).  Call :meth:`end_peer` with the returned
        id when the packet flow completes.
        """
        if len(path) < 2:
            raise SimulationError("peer flow path needs at least two nodes")
        if flow_id is None:
            flow_id = f"peer-{self._peer_seq}"
        self._peer_seq += 1
        pid = f"pkt:{flow_id}"
        chans = self._channels_on(path)
        link_ids = [c.name for c in chans]
        self.solver.add_flow(pid, link_ids, rate_cap_bps=rate_cap_bps)
        self._nominal.add_flow(pid, link_ids, rate_cap_bps=rate_cap_bps)
        self._peers[pid] = tuple(link_ids)
        return pid

    def end_peer(self, peer_id: str) -> None:
        """Release a registered packet peer's reserved share."""
        self._peers.pop(peer_id)
        self.solver.remove_flow(peer_id)
        self._nominal.remove_flow(peer_id)

    @property
    def live_peers(self) -> int:
        """Number of packet peers currently holding a reservation."""
        return len(self._peers)

    def _finish_flow(self, fc: FluidTransfer, finished_s: float) -> None:
        fc.finished_s = finished_s
        fc.advanced_bytes = fc.wire_bytes
        self.finished_flows += 1
        for c in self._channels_on(fc.path):
            n = self._shared[c.name] - 1
            if n:
                self._shared[c.name] = n
            else:
                del self._shared[c.name]
                self._pkt_marks.pop(c.name, None)
                # the debit this channel carried dies with the boundary
                self.solver.set_external_load(c.name, 0.0)
        self.solver.remove_flow(fc.flow_id)
        self._nominal.remove_flow(fc.flow_id)
        del self._flows[fc.flow_id]
        self._rates.pop(fc.flow_id, None)
        fc.done.succeed(fc)

    # -- epoch machinery ----------------------------------------------------
    def _epoch_tick(self) -> None:
        """One epoch: measure packet debits, re-solve, advance, publish.

        The freshly solved rates apply retroactively over the epoch that
        just elapsed — flows added at the previous tick advance from that
        instant instead of idling one epoch (a bias transfers shorter than
        ~20 epochs would notice).  Flows added *mid*-epoch over-advance by
        at most one epoch of bytes; the fidelity tests bound that error.
        """
        now = self.net.sim.now
        dt = now - self._last_tick_s
        self._last_tick_s = now
        self.epochs += 1
        prof = self._prof
        if prof is None:
            self._measure_phase(dt)
            if self._flows:
                self._publish_phase()
                self._advance_phase(now, dt)
        else:
            prof.enter("hybrid.epoch")
            try:
                prof.enter("hybrid.measure")
                try:
                    self._measure_phase(dt)
                finally:
                    prof.exit()
                if self._flows:
                    # the solve inside nests its own fluid.solve frame
                    self._publish_phase()
                    prof.enter("hybrid.advance")
                    try:
                        self._advance_phase(now, dt)
                    finally:
                        prof.exit()
            finally:
                prof.exit()
        self._maybe_quiesce()

    def _measure_phase(self, dt: float) -> None:
        # 0. Refresh peer reservations from the nominal allocation (raw
        #    capacities, no external debits — breaks the measure/reserve
        #    circularity that would otherwise starve registered peers).
        if self._peers:
            if self._nominal.dirty:
                nrates = self._nominal.rates()
                reserved: dict[str, float] = {}
                for pid, links in self._peers.items():
                    r = nrates.get(pid, 0.0)
                    if r and r != float("inf"):
                        for l in links:
                            reserved[l] = reserved.get(l, 0.0) + r
                self._peer_reserved = reserved
        elif self._peer_reserved:
            self._peer_reserved = {}

        # 1. Measure packet bytes carried on shared links over the epoch
        #    and debit them — net of reserved peer shares — from the
        #    fluid-fillable capacity.
        if dt > 0:
            for name in self._shared:
                ch = self._channels[name]
                mark = self._pkt_marks.get(name, ch.stats.bytes)
                delta_bytes = ch.stats.bytes - mark
                self._pkt_marks[name] = ch.stats.bytes
                self.debited_bytes += delta_bytes
                reserved = self._peer_reserved.get(name, 0.0)
                load_bps = max(delta_bytes * 8.0 / dt - reserved, 0.0)
                self.solver.set_external_load(name, load_bps)

    def _publish_phase(self) -> None:
        # 2. Re-solve (lazy: a clean allocation costs nothing) and
        #    publish the fluid background load to the packet engine —
        #    total allocated load minus the shares reserved for peers.
        was_dirty = self.solver.dirty
        self._rates = self.solver.rates()
        if was_dirty:
            loads = self.solver.link_fluid_load_bps()
            peer_load: dict[str, float] = {}
            for pid, links in self._peers.items():
                r = self._rates.get(pid, 0.0)
                if r and r != float("inf"):
                    for l in links:
                        peer_load[l] = peer_load.get(l, 0.0) + r
            for name, ch in self._channels.items():
                ch.fluid_load_bps = max(
                    loads.get(name, 0.0) - peer_load.get(name, 0.0), 0.0
                )

    def _advance_phase(self, now: float, dt: float) -> None:
        # 3. Advance live flows over the elapsed epoch.
        if dt > 0:
            finished: list[tuple[FluidTransfer, float]] = []
            for fid, fc in self._flows.items():
                rate = self._rates.get(fid, 0.0)
                if rate <= 0:
                    continue
                if rate == float("inf"):
                    finished.append((fc, now - dt))
                    continue
                delta = rate * dt / 8.0
                remaining = fc.wire_bytes - fc.advanced_bytes
                if delta >= remaining:
                    # interpolated-finish: back out the sub-epoch instant
                    self.bytes_advanced += remaining
                    finished.append((fc, now - dt + remaining * 8.0 / rate))
                else:
                    fc.advanced_bytes += delta
                    self.bytes_advanced += delta
            for fc, at_s in finished:
                self._finish_flow(fc, at_s)

    def _maybe_quiesce(self) -> None:
        if not self._flows:
            # quiesce: clear published loads and stop scheduling, so the
            # simulator can drain and a fluid-free run stays byte-identical
            self._rates = {}
            self._peer_reserved = {}
            for ch in self._channels.values():
                ch.fluid_load_bps = 0.0
            self._ticker.stop()

    # -- views --------------------------------------------------------------
    def link_fluid_load_bps(self) -> dict[str, float]:
        """Current published fluid load per directed channel name."""
        return {
            name: ch.fluid_load_bps
            for name, ch in self._channels.items()
            if ch.fluid_load_bps
        }
