"""Fig 8: 10-byte echo round-trip latency (TCP, SSL, MIC-TCP, MIC-SSL, Tor).

Paper shape: Tor is ~62× TCP; MIC-TCP is comparable with TCP; MIC-SSL is
comparable with SSL.

Measurement path: each trial's RTT is observed into the testbed's
``app.echo_rtt_s`` histogram and the reported number is the mean of the
aggregate ``repro.obs.Histogram`` over all trials (the same summary the
metric exporters emit — see docs/observability.md).
"""

from repro.bench import fig8_latency


def test_fig8_latency(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: fig8_latency(trials=3), rounds=1, iterations=1
    )
    save_table("fig8_latency", result)

    tcp = result.value("TCP", "rtt")
    ssl = result.value("SSL", "rtt")
    mic_tcp = result.value("MIC-TCP", "rtt")
    mic_ssl = result.value("MIC-SSL", "rtt")
    tor = result.value("Tor", "rtt")

    # Tor is dramatically slower — the paper reports ~62x; accept 20x-150x.
    assert 20 * tcp < tor < 150 * tcp
    # MIC-TCP within 10% of TCP; MIC-SSL within 10% of SSL.
    assert mic_tcp < tcp * 1.10
    assert mic_ssl < ssl * 1.10
    # SSL adds measurable latency over TCP (crypto on 10 B is small but real).
    assert ssl > tcp
