"""Sec VI-C: MC routing calculation scales O(|F|) in the m-flow count.

Measures the controller's real planning compute per channel request.  The
paper's claim: thanks to the hash-based collision avoidance there is nearly
no extra routing-calculation overhead, and cost is linear in the number of
m-flows per channel.

Also drives a full end-to-end MIC scenario on a k=8 fat tree (80 switches,
128 hosts) — the topology scale the indexed classification pipeline exists
for.

Set ``BENCH_QUICK=1`` to trim the sweeps for CI (``make bench-quick``).
"""

import os

from repro.bench import (
    mic_fat_tree_scenario,
    scalability_routing_calculation,
    scalability_vs_fabric,
)

QUICK = bool(os.environ.get("BENCH_QUICK"))

FLOW_COUNTS = (1, 2) if QUICK else (1, 2, 4, 8)
FABRIC_KS = (4, 6) if QUICK else (4, 6, 8)
SCENARIO_PAIRS = 2 if QUICK else 4


def test_scalability_routing_calc(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: scalability_routing_calculation(flow_counts=FLOW_COUNTS),
        rounds=1, iterations=1,
    )
    save_table("scalability_routing_calc", result)

    times = [result.value("MIC plan", n) for n in FLOW_COUNTS]
    # Monotone growth with |F| ...
    assert times[0] < times[-1]
    # ... and roughly linear: n flows cost no more than ~2n x one flow
    # (generous bound; superlinear growth would flag an algorithmic bug).
    assert times[-1] < times[0] * (FLOW_COUNTS[-1] // FLOW_COUNTS[0]) * 2
    # Absolute cost is tiny: planning a single-flow channel takes well under
    # ten milliseconds of controller compute even in pure Python.
    assert times[0] < 10e-3


def test_scalability_vs_fabric(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: scalability_vs_fabric(ks=FABRIC_KS), rounds=1, iterations=1,
    )
    save_table("scalability_vs_fabric", result)

    labels = result.xs()
    times = [result.value("plan time", x) for x in labels]
    # Warm-cache planning stays in the low-millisecond range even on a k=8
    # fat-tree (128 hosts) — the hash machinery is fabric-size independent;
    # only cached path structures grow.  Generous bound: this is wall time
    # on a possibly-contended CPU.
    assert all(t < 60e-3 for t in times)


def test_fat_tree8_mic_scenario(benchmark, save_table):
    """End-to-end channels + echo on fat_tree(8): 80 switches, 128 hosts."""
    result = benchmark.pedantic(
        lambda: mic_fat_tree_scenario(k=8, n_pairs=SCENARIO_PAIRS),
        rounds=1, iterations=1,
    )
    save_table("fat_tree8_mic_scenario", result)

    assert result.value("scenario", "switches") == 80
    assert result.value("scenario", "hosts") == 128
    # Every channel came up and echoed its payload across the fabric.
    assert result.value("scenario", "reply_ok") == 1.0
    assert result.value("scenario", "mic_rules_total") > 0
