"""No observer effect: observed and unobserved runs are byte-identical.

The observability layer must never perturb a run — its hooks schedule no
events, emit no trace records, and touch no RNG.  These tests run the same
seeded MIC echo twice (with and without an attached Observer, and with the
periodic timeline sampling on top) and require the full trace logs to
serialize identically.
"""

import itertools

from repro.core import channel, controller, deploy_mic
from repro.net import flowtable, packet

MESSAGE = b"m" * 300


def _reset_id_counters():
    """Pin the process-global ID mints (packet uids, content tags, entry,
    channel, group and cookie IDs) to fixed bases.  They are cosmetic
    labels, but they appear in trace reprs; without pinning, back-to-back
    runs would differ by counter offsets and mask a real observer effect.
    """
    packet._uid_counter = itertools.count(1)
    packet._tag_counter = itertools.count(1)
    flowtable._entry_counter = itertools.count(1)
    channel._channel_ids = itertools.count(1)
    controller._group_ids = itertools.count(1)
    controller._cookie_ids = itertools.count(0x4D49_0000)


def _echo_run(observe: bool, timeline_period: float = 0.0, seed: int = 7):
    """One seeded MIC echo h1 <-> h16; returns (trace reprs, final sim time)."""
    _reset_id_counters()
    dep = deploy_mic(seed=seed, observe=observe)
    if observe and timeline_period > 0:
        dep.obs.start_timeline(timeline_period)
    server = dep.server("h16", 80)
    alice = dep.endpoint("h1")

    def client():
        stream = yield from alice.connect("h16", service_port=80, n_mns=3)
        stream.send(MESSAGE)
        yield from stream.recv_exactly(len(MESSAGE))

    def srv():
        stream = yield server.accept()
        data = yield from stream.recv_exactly(len(MESSAGE))
        stream.send(data)

    dep.sim.process(client())
    dep.sim.process(srv())
    dep.run_for(2.0)
    if observe:
        dep.obs.stop_timeline()
    return [repr(r) for r in dep.net.trace.records], dep.sim.now, dep


def test_observed_run_is_byte_identical():
    plain, t_plain, _ = _echo_run(observe=False)
    seen, t_seen, dep = _echo_run(observe=True)
    assert t_plain == t_seen
    assert plain == seen
    # ... and the observed run actually observed something (not vacuous).
    assert len(dep.obs.spans.by_name("mic.connect")) == 1
    assert len(dep.obs.spans.by_name("mic.establish")) == 1
    snap = dep.obs.snapshot()
    assert snap.histogram("net.packet_latency_s", host="h16")["count"] > 0


def test_timeline_sampling_is_byte_identical():
    """Periodic sampling schedules wakeups, but reads-only: same trace."""
    plain, t_plain, _ = _echo_run(observe=False)
    seen, t_seen, dep = _echo_run(observe=True, timeline_period=0.05)
    assert t_plain == t_seen
    assert plain == seen
    # The timeline really ran: ~2.0s horizon / 0.05s period of ticks
    # (one tick may fall past the horizon through float accumulation).
    ch = next(iter(dep.obs.channels()))
    n = len(dep.obs.timeline.samples("link.queue_sample.bytes", ch.name))
    assert 38 <= n <= 40


def test_detach_restores_the_unhooked_state():
    _, _, dep = _echo_run(observe=True)
    dep.obs.detach()
    assert all(h.obs is None for h in dep.net.hosts())
    assert dep.mic.obs is None
