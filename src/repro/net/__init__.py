"""Network substrate: addresses, packets, links, SDN switches, hosts,
topologies, network assembly and the fluid throughput solver.

This package replaces the paper's Mininet + Open vSwitch testbed.
"""

from .addresses import IPv4Addr, MacAddr, Subnet, ip, mac
from .flowtable import (
    CONTROLLER_PORT,
    Action,
    Drop,
    FlowEntry,
    FlowTable,
    Group,
    GroupEntry,
    Match,
    Output,
    PopMpls,
    PushMpls,
    SetField,
    ToController,
)
from .fluid import FluidAllocation, FluidFlow, FluidSolver, max_min_fair
from .host import Host
from .hybrid import (
    HANDOFF_CONTRACT,
    PACKET_PINS,
    WIRE_EFFICIENCY,
    FluidTransfer,
    HandoffInvariant,
    HybridEngine,
    PacketPin,
    format_handoff_table,
    format_pin_table,
)
from .link import Channel, Link, LinkStats
from .network import Network
from .node import CpuMeter, Node
from .packet import Packet, reset_identity_counters
from .params import DEFAULT_PARAMS, NetParams
from .switch import Switch
from .topology import Topology, bcube, fat_tree, leaf_spine, linear

__all__ = [
    "CONTROLLER_PORT",
    "HANDOFF_CONTRACT",
    "PACKET_PINS",
    "WIRE_EFFICIENCY",
    "Action",
    "Channel",
    "CpuMeter",
    "DEFAULT_PARAMS",
    "Drop",
    "FlowEntry",
    "FlowTable",
    "FluidAllocation",
    "FluidFlow",
    "FluidSolver",
    "FluidTransfer",
    "Group",
    "GroupEntry",
    "HandoffInvariant",
    "Host",
    "HybridEngine",
    "IPv4Addr",
    "Link",
    "LinkStats",
    "MacAddr",
    "Match",
    "NetParams",
    "Network",
    "Node",
    "Output",
    "Packet",
    "PacketPin",
    "PopMpls",
    "PushMpls",
    "SetField",
    "Subnet",
    "Switch",
    "ToController",
    "Topology",
    "bcube",
    "fat_tree",
    "format_handoff_table",
    "format_pin_table",
    "ip",
    "leaf_spine",
    "linear",
    "mac",
    "max_min_fair",
    "reset_identity_counters",
]
