"""Integration tests for the protocol session drivers and testbed."""

import pytest

from repro.bench import Testbed, open_mic, open_ssl, open_tcp, open_tor, run_process
from repro.workloads import measure_echo


@pytest.fixture(scope="module")
def bed():
    return Testbed.create(seed=0)


def test_testbed_shape(bed):
    assert len(bed.net.topo.switches()) == 20
    assert len(bed.net.topo.hosts()) == 16
    assert len(bed.relays) == 7
    assert bed.ctrl.packet_in_count == 0  # pre-wired


def test_tcp_session_echo():
    bed = Testbed.create(seed=1)
    session = run_process(bed.net, open_tcp(bed, "h1", "h16", 10001))
    assert session.protocol == "tcp"
    assert session.setup_s > 0
    echo = run_process(
        bed.net, measure_echo(bed.net.sim, session.client, session.server, 10)
    )
    assert echo.rtt_s > 0


def test_ssl_session_slower_setup_than_tcp():
    bed = Testbed.create(seed=2)
    tcp = run_process(bed.net, open_tcp(bed, "h1", "h16", 10002))
    ssl = run_process(bed.net, open_ssl(bed, "h2", "h15", 10003))
    assert ssl.setup_s > tcp.setup_s * 2


def test_mic_tcp_session_echo():
    bed = Testbed.create(seed=3)
    session = run_process(bed.net, open_mic(bed, "h1", "h16", 10004, n_mns=3))
    assert session.protocol == "mic-tcp"
    echo = run_process(
        bed.net, measure_echo(bed.net.sim, session.client, session.server, 10)
    )
    assert echo.rtt_s > 0
    assert bed.mic.live_channels == 1


def test_mic_ssl_session_echo():
    bed = Testbed.create(seed=4)
    session = run_process(
        bed.net, open_mic(bed, "h1", "h16", 10005, n_mns=3, over_ssl=True)
    )
    assert session.protocol == "mic-ssl"
    echo = run_process(
        bed.net, measure_echo(bed.net.sim, session.client, session.server, 10)
    )
    assert echo.rtt_s > 0


def test_tor_session_echo():
    bed = Testbed.create(seed=5)
    session = run_process(bed.net, open_tor(bed, "h1", "h16", 10006, route_len=3))
    assert session.protocol == "tor"
    echo = run_process(
        bed.net, measure_echo(bed.net.sim, session.client, session.server, 10)
    )
    assert echo.rtt_s > 0


def test_protocol_latency_ordering():
    """The Fig 8 ordering must hold for any seed: tor >> ssl >= tcp."""
    bed = Testbed.create(seed=6)
    rtts = {}
    specs = [
        ("tcp", open_tcp(bed, "h1", "h16", 10007)),
        ("ssl", open_ssl(bed, "h2", "h15", 10008)),
        ("tor", open_tor(bed, "h3", "h14", 10009, route_len=3)),
    ]
    for name, opener in specs:
        session = run_process(bed.net, opener)
        echo = run_process(
            bed.net,
            measure_echo(bed.net.sim, session.client, session.server, 10),
        )
        rtts[name] = echo.rtt_s
    assert rtts["tor"] > 10 * rtts["tcp"]
    assert rtts["ssl"] >= rtts["tcp"] * 0.9
