"""Unit and property tests for the max-min fair fluid solver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import FluidFlow, max_min_fair


def test_single_flow_gets_full_link():
    alloc = max_min_fair([FluidFlow("f", ["l1"])], {"l1": 100.0})
    assert alloc.rate("f") == pytest.approx(100.0)


def test_two_flows_share_equally():
    alloc = max_min_fair(
        [FluidFlow("a", ["l1"]), FluidFlow("b", ["l1"])], {"l1": 100.0}
    )
    assert alloc.rate("a") == pytest.approx(50.0)
    assert alloc.rate("b") == pytest.approx(50.0)


def test_classic_maxmin_example():
    """Textbook parking-lot: one long flow vs. two short flows.

    Links A (cap 10) and B (cap 5); f1 uses A+B, f2 uses A, f3 uses B.
    Max-min: f1=2.5, f3=2.5 (B saturates), then f2 fills A to 7.5.
    """
    alloc = max_min_fair(
        [
            FluidFlow("f1", ["A", "B"]),
            FluidFlow("f2", ["A"]),
            FluidFlow("f3", ["B"]),
        ],
        {"A": 10.0, "B": 5.0},
    )
    assert alloc.rate("f1") == pytest.approx(2.5)
    assert alloc.rate("f3") == pytest.approx(2.5)
    assert alloc.rate("f2") == pytest.approx(7.5)


def test_rate_cap_respected():
    alloc = max_min_fair(
        [FluidFlow("a", ["l1"], rate_cap_bps=10.0), FluidFlow("b", ["l1"])],
        {"l1": 100.0},
    )
    assert alloc.rate("a") == pytest.approx(10.0)
    assert alloc.rate("b") == pytest.approx(90.0)


def test_cap_below_fair_share_redistributes():
    alloc = max_min_fair(
        [
            FluidFlow("a", ["l1"], rate_cap_bps=5.0),
            FluidFlow("b", ["l1"]),
            FluidFlow("c", ["l1"]),
        ],
        {"l1": 95.0},
    )
    assert alloc.rate("a") == pytest.approx(5.0)
    assert alloc.rate("b") == pytest.approx(45.0)
    assert alloc.rate("c") == pytest.approx(45.0)


def test_disjoint_flows_independent():
    alloc = max_min_fair(
        [FluidFlow("a", ["l1"]), FluidFlow("b", ["l2"])],
        {"l1": 10.0, "l2": 20.0},
    )
    assert alloc.rate("a") == pytest.approx(10.0)
    assert alloc.rate("b") == pytest.approx(20.0)


def test_empty_path_flow_unconstrained():
    alloc = max_min_fair([FluidFlow("free", [])], {"l1": 1.0})
    assert alloc.rate("free") == float("inf")


def test_unknown_link_rejected():
    with pytest.raises(KeyError):
        max_min_fair([FluidFlow("f", ["ghost"])], {"l1": 1.0})


def test_duplicate_flow_ids_rejected():
    with pytest.raises(ValueError):
        max_min_fair([FluidFlow("f", ["l1"]), FluidFlow("f", ["l1"])], {"l1": 1.0})


def test_link_load_and_utilization():
    alloc = max_min_fair(
        [FluidFlow("a", ["l1", "l2"]), FluidFlow("b", ["l1"])],
        {"l1": 10.0, "l2": 100.0},
    )
    assert alloc.link_load_bps["l1"] == pytest.approx(10.0)
    assert alloc.utilization("l1") == pytest.approx(1.0)
    assert "l1" in alloc.bottlenecked_links()
    assert "l2" not in alloc.bottlenecked_links()


# ---------------------------------------------------------------------------
# Property tests: feasibility + max-min fairness on random instances.
# ---------------------------------------------------------------------------

@st.composite
def random_instance(draw):
    n_links = draw(st.integers(min_value=1, max_value=6))
    links = {f"l{i}": draw(st.floats(min_value=1.0, max_value=1000.0)) for i in range(n_links)}
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for i in range(n_flows):
        path = draw(
            st.lists(st.sampled_from(sorted(links)), min_size=1, max_size=n_links, unique=True)
        )
        cap = draw(st.one_of(st.none(), st.floats(min_value=0.5, max_value=500.0)))
        flows.append(FluidFlow(f"f{i}", path, rate_cap_bps=cap))
    return flows, links


@settings(max_examples=120, deadline=None)
@given(random_instance())
def test_allocation_is_feasible(instance):
    flows, links = instance
    alloc = max_min_fair(flows, links)
    for link, cap in links.items():
        assert alloc.link_load_bps.get(link, 0.0) <= cap * (1 + 1e-6)
    for f in flows:
        if f.rate_cap_bps is not None:
            assert alloc.rate(f.flow_id) <= f.rate_cap_bps * (1 + 1e-6)
        assert alloc.rate(f.flow_id) >= 0


@settings(max_examples=120, deadline=None)
@given(random_instance())
def test_allocation_is_maxmin_fair(instance):
    """Every flow is either at its cap or crosses a saturated link where it
    receives at least as much as every other flow on that link (the standard
    bottleneck characterization of max-min fairness)."""
    flows, links = instance
    alloc = max_min_fair(flows, links)
    loads = alloc.link_load_bps
    for f in flows:
        r = alloc.rate(f.flow_id)
        if f.rate_cap_bps is not None and r >= f.rate_cap_bps * (1 - 1e-6):
            continue  # capped
        has_bottleneck = False
        for link in f.links:
            saturated = loads.get(link, 0.0) >= links[link] * (1 - 1e-6)
            if not saturated:
                continue
            peers = [
                alloc.rate(g.flow_id) for g in flows if link in g.links
            ]
            if r >= max(peers) * (1 - 1e-6):
                has_bottleneck = True
                break
        assert has_bottleneck, f"flow {f.flow_id} has no bottleneck and no cap"
