"""Workloads: duplex adapters, iperf-style measurement, traffic generators."""

from .apps import EchoService, FileService, RpcService, fetch_file, rpc_call
from .duplex import Duplex, as_duplex
from .generator import FlowSpec, dc_mix, pick_pairs, poisson_arrivals
from .iperf import EchoResult, TransferResult, measure_echo, measure_transfer

__all__ = [
    "Duplex",
    "EchoService",
    "FileService",
    "RpcService",
    "fetch_file",
    "rpc_call",
    "EchoResult",
    "FlowSpec",
    "TransferResult",
    "as_duplex",
    "dc_mix",
    "measure_echo",
    "measure_transfer",
    "pick_pairs",
    "poisson_arrivals",
]
