"""SDN controller runtime (Ryu-equivalent).

The :class:`Controller` connects to every switch in a :class:`Network`,
receives packet-ins, dispatches them to registered apps, and offers the
southbound operations apps need: flow-mod (with install latency), group-mod,
packet-out, and path-rule compilation helpers.

Apps subclass :class:`ControllerApp` and override ``on_packet_in``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..net.flowtable import FlowEntry, GroupEntry, Match, Output
from ..net.network import Network
from ..net.packet import Packet
from ..net.switch import Switch
from .discovery import TopologyView

__all__ = ["Controller", "ControllerApp"]


class ControllerApp:
    """Base class for control applications."""

    name = "app"

    def attach(self, controller: "Controller") -> None:
        """Bind the app to its controller (called by register)."""
        self.controller = controller

    def on_packet_in(self, switch: Switch, packet: Packet, in_port: int) -> bool:
        """Handle a punted packet.  Return True if consumed (stops dispatch)."""
        return False

    def on_link_event(self, a: str, b: str, up: bool) -> None:
        """React to a link up/down event (view is already updated)."""


class Controller:
    """The network's single logical controller (assumed secure, Sec III-D)."""

    def __init__(self, network: Network, seed_stream: str = "controller"):
        self.network = network
        self.sim = network.sim
        self.view = TopologyView(network.topo)
        self.apps: list[ControllerApp] = []
        self.rng = self.sim.rng(seed_stream)
        self.packet_in_count = 0
        self.flow_mods_sent = 0
        for sw in network.switches():
            sw.connect_controller(self._handle_packet_in)
        network.link_listeners.append(self._handle_link_event)

    # -- app management -----------------------------------------------------
    def register(self, app: ControllerApp) -> ControllerApp:
        """Attach and activate a control application."""
        app.attach(self)
        self.apps.append(app)
        return app

    def _handle_packet_in(self, switch: Switch, packet: Packet, in_port: int) -> None:
        self.packet_in_count += 1
        self.network.trace.emit(
            self.sim.now,
            "ctrl.packet_in",
            switch.name,
            uid=packet.uid,
            src_ip=str(packet.ip_src),
            dst_ip=str(packet.ip_dst),
        )
        for app in self.apps:
            if app.on_packet_in(switch, packet, in_port):
                return

    def _handle_link_event(self, a: str, b: str, up: bool) -> None:
        self.network.trace.emit(
            self.sim.now, "ctrl.link_event", f"{a}<->{b}", up=up
        )
        self.view.set_link_state(a, b, up)
        for app in self.apps:
            app.on_link_event(a, b, up)

    # -- southbound operations ---------------------------------------------
    def install(self, switch_name: str, entry: FlowEntry, delay: Optional[float] = None):
        """Send a flow-mod; returns the event that fires once active."""
        self.flow_mods_sent += 1
        return self.network.switch(switch_name).install_later(entry, delay=delay)

    def install_batch(
        self,
        switch_name: str,
        entries: Sequence[FlowEntry],
        delay: Optional[float] = None,
    ):
        """Send one batched flow-mod carrying ``entries`` to a switch.

        The batch feeds the switch's classification index incrementally and
        costs a single lookup-cache invalidation; returns the event that
        fires once every rule in the batch is active.
        """
        self.flow_mods_sent += len(entries)
        return self.network.switch(switch_name).install_many_later(
            entries, delay=delay
        )

    def install_group(self, switch_name: str, group: GroupEntry, delay: Optional[float] = None):
        """Send a group-mod; returns the install-complete event."""
        sw = self.network.switch(switch_name)
        d = self.network.params.flow_install_delay_s if delay is None else delay
        ev = self.sim.event()

        def _do():
            sw.table.install_group(group)
            ev.succeed()

        self.sim.call_later(d, _do)
        return ev

    def remove_by_cookie(self, switch_name: str, cookie: int) -> None:
        """Remove all rules and groups tagged with ``cookie`` (teardown)."""
        sw = self.network.switch(switch_name)

        def _do():
            sw.table.remove_by_cookie(cookie)
            sw.table.remove_groups_by_cookie(cookie)

        self.sim.call_later(self.network.params.flow_install_delay_s, _do)

    def packet_out(self, switch_name: str, packet: Packet, out_port: int) -> None:
        """Re-inject a punted packet at a switch."""
        sw = self.network.switch(switch_name)
        self.sim.call_later(
            self.network.params.packet_out_delay_s,
            lambda: sw.transmit(packet, out_port),
        )

    # -- introspection / verification -----------------------------------------
    def iter_rules(self):
        """Yield ``(switch_name, FlowEntry)`` for every installed rule."""
        for sw in self.network.switches():
            for entry in sw.table.iter_entries():
                yield sw.name, entry

    def iter_groups(self):
        """Yield ``(switch_name, GroupEntry)`` for every installed group."""
        for sw in self.network.switches():
            for group in sw.table.groups.values():
                yield sw.name, group

    def verify(self):
        """Statically verify the installed data plane.

        If a Mimic Controller app is registered, its channel plans unlock
        the MIC intent checks too.  Returns a
        :class:`repro.analysis.VerificationReport`.
        """
        from ..analysis import verify_network

        mic = next((app for app in self.apps if app.name == "mic"), None)
        return verify_network(self.network, mic=mic)

    # -- helpers --------------------------------------------------------------
    def ports_along(self, path: Sequence[str]) -> list[tuple[str, int]]:
        """(switch, out_port) pairs for the switch hops of a node path."""
        hops: list[tuple[str, int]] = []
        for i, node in enumerate(path[:-1]):
            if self.network.topo.kind(node) != "switch":
                continue
            hops.append((node, self.network.port(node, path[i + 1])))
        return hops

    def install_unicast_path(
        self,
        path: Sequence[str],
        match: Match,
        priority: int = 10,
        cookie: int = 0,
    ) -> list:
        """Install a plain forwarding rule on every switch along ``path``.

        Returns the list of install-complete events (installs proceed in
        parallel, as a real controller would batch them).
        """
        events = []
        for sw_name, out_port in self.ports_along(path):
            entry = FlowEntry(match, [Output(out_port)], priority=priority, cookie=cookie)
            events.append(self.install(sw_name, entry))
        return events
