"""Tests for per-link anonymity-set quantification."""

import math

import pytest

from repro.attacks import link_anonymity, walk_anonymity
from repro.core import AddressRestrictions
from repro.net import fat_tree, leaf_spine
from repro.sdn import TopologyView


@pytest.fixture(scope="module")
def ft():
    view = TopologyView(fat_tree(4))
    return view, AddressRestrictions(view)


class TestLinkAnonymity:
    def test_host_uplink_exposes_sender(self, ft):
        view, r = ft
        a = link_anonymity(r, "h1", "p0e0")
        assert a.sender_set_size == 1  # it can only be h1
        assert a.receiver_set_size > 1  # but the receiver is hidden

    def test_host_downlink_exposes_receiver(self, ft):
        view, r = ft
        a = link_anonymity(r, "p0e0", "h1")
        assert a.receiver_set_size == 1
        assert a.sender_set_size > 1

    def test_core_link_hides_both(self, ft):
        view, r = ft
        a = link_anonymity(r, "p0a0", "c1")
        # A pod uplink mixes both edge switches' hosts as senders and every
        # other pod's hosts as receivers.
        assert a.sender_set_size == 4
        assert a.receiver_set_size == 12

    def test_entropy_is_log_of_set_size(self, ft):
        view, r = ft
        a = link_anonymity(r, "p0a0", "c1")
        assert a.sender_entropy_bits == pytest.approx(math.log2(4))
        assert a.receiver_entropy_bits == pytest.approx(math.log2(12))

    def test_pair_count_consistent(self, ft):
        view, r = ft
        a = link_anonymity(r, "p0a0", "c1")
        assert a.pair_count == len(r.plausible_pairs("p0a0", "c1"))
        assert a.pair_count >= max(a.sender_set_size, a.receiver_set_size)


class TestWalkAnonymity:
    def test_profile_along_cross_pod_path(self, ft):
        view, r = ft
        walk = view.shortest_path("h1", "h16")
        profile = walk_anonymity(r, walk)
        assert len(profile) == len(walk) - 1
        # Ends are exposed, the middle is anonymous.
        assert profile[0].sender_set_size == 1
        assert profile[-1].receiver_set_size == 1
        middle = profile[len(profile) // 2]
        assert middle.sender_set_size > 1 and middle.receiver_set_size > 1

    def test_bigger_fabric_bigger_sets(self):
        """Anonymity grows with the fabric: a k=6 fat-tree's core links mix
        more hosts than a k=4's."""
        small = AddressRestrictions(TopologyView(fat_tree(4)))
        big = AddressRestrictions(TopologyView(fat_tree(6)))
        a4 = link_anonymity(small, "p0a0", "c1")
        a6 = link_anonymity(big, "p0a0", "c1")
        assert a6.sender_set_size > a4.sender_set_size
        assert a6.receiver_set_size > a4.receiver_set_size

    def test_leaf_spine_uplink(self):
        r = AddressRestrictions(TopologyView(leaf_spine(2, 4, 4)))
        a = link_anonymity(r, "leaf1", "spine1")
        assert a.sender_set_size == 4  # the leaf's hosts
        assert a.receiver_set_size == 12  # everyone else
