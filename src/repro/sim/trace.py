"""Structured event tracing.

Every substrate component emits trace records through a shared
:class:`TraceLog`.  Records are cheap named tuples; tracing can be filtered
by category to keep long benchmark runs lean, and the attack modules consume
traces as the adversary's observation feed (a compromised switch literally
replays the trace records emitted at that switch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = ["TraceRecord", "TraceLog"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    category: str
    node: str
    detail: dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.detail[key]


@dataclass
class TraceLog:
    """Append-only trace store with optional category filtering.

    ``categories=None`` records everything; otherwise only the listed
    categories are kept.  ``subscribers`` receive every *kept* record
    synchronously — observation-point attacks register themselves here.
    """

    categories: Optional[set[str]] = None
    records: list[TraceRecord] = field(default_factory=list)
    subscribers: list[Callable[[TraceRecord], None]] = field(default_factory=list)

    def enabled(self, category: str) -> bool:
        """True if records of this category are kept."""
        return self.categories is None or category in self.categories

    def emit(self, time: float, category: str, node: str, **detail: Any) -> None:  # taint: sink
        """Record one occurrence (and notify subscribers)."""
        if not self.enabled(category):
            return
        rec = TraceRecord(time=time, category=category, node=node, detail=detail)
        self.records.append(rec)
        for sub in self.subscribers:
            sub(rec)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked on every kept record."""
        self.subscribers.append(fn)

    # -- queries ----------------------------------------------------------
    def by_category(self, category: str) -> list[TraceRecord]:
        """All records of one category."""
        return [r for r in self.records if r.category == category]

    def by_node(self, node: str) -> list[TraceRecord]:
        """All records emitted by one node."""
        return [r for r in self.records if r.node == node]

    def select(self, **criteria: Any) -> Iterator[TraceRecord]:
        """Records whose detail matches all key/value criteria."""
        for r in self.records:
            if all(r.detail.get(k) == v for k, v in criteria.items()):
                yield r

    def clear(self) -> None:
        """Drop all stored records."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)
