"""Tor onion relay.

Runs on an end host (Tor is an overlay — this is precisely the architectural
contrast with MIC's in-network rewriting).  The relay:

* accepts OR connections and CREATE cells (burning the DH+RSA "onion-skin"
  compute per circuit extension),
* peels one onion layer off forward relay cells and pushes them down the
  circuit, adds one layer to backward cells and pushes them up,
* acts as exit: opens a plain TCP stream to the target, shuttles bytes, and
  enforces the stream's SENDME window toward the client,
* charges two distinct per-cell costs, both observable on real relays:

  - **serialized CPU** (AES + daemon work) on a relay-wide lock — this caps
    the relay's cell *throughput*,
  - **pipeline latency** (queueing, event-loop scheduling, token buckets)
    added to each cell's delivery without holding the lock — this inflates
    Tor's *round-trip time* without limiting bulk rate.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..crypto import DEFAULT_COSTS, CryptoCostModel, Key, KeyExchange, Sealed, seal, unseal
from ..net.host import Host
from ..sim import Resource
from ..transport.framing import MessageChannel
from ..transport.tcp import TcpConnection, TcpStack
from .cells import (
    CELL_SIZE,
    BeginPayload,
    ConnectedPayload,
    CreateCell,
    CreatedCell,
    DataPayload,
    EndPayload,
    ExtendPayload,
    ExtendedPayload,
    RelayCell,
    SendmePayload,
)
from .directory import OR_PORT, RelayDescriptor, TorDirectory
from .flowctl import SENDME_EVERY_CELLS, STREAM_WINDOW_CELLS, Window

__all__ = ["TorRelay", "TorRelayParams"]


class TorRelayParams:
    """Relay behaviour knobs (see module docstring for the two costs)."""

    def __init__(
        self,
        cell_serial_cpu_s: float = 15e-6,
        cell_latency_s: float = 1.5e-3,
    ):
        self.cell_serial_cpu_s = cell_serial_cpu_s
        self.cell_latency_s = cell_latency_s


class _CircuitState:
    __slots__ = (
        "key", "prev", "next", "exit_conn", "bwd_window", "fwd_cells_delivered"
    )

    def __init__(self, key: Key, prev: MessageChannel):
        self.key = key
        self.prev = prev
        self.next: Optional[MessageChannel] = None
        self.exit_conn: Optional[TcpConnection] = None
        self.bwd_window: Optional[Window] = None  # created at exit BEGIN
        self.fwd_cells_delivered = 0


class TorRelay:
    """One onion router instance on a host."""

    def __init__(
        self,
        host: Host,
        directory: TorDirectory,
        name: Optional[str] = None,
        costs: CryptoCostModel = DEFAULT_COSTS,
        params: Optional[TorRelayParams] = None,
    ):
        self.host = host
        self.sim = host.sim
        self.directory = directory
        self.name = name or f"relay-{host.name}"
        self.costs = costs
        self.params = params or TorRelayParams()
        self.tcp = TcpStack(host)
        self.circuits: dict[int, _CircuitState] = {}
        self.cells_relayed = 0
        self.circuits_created = 0
        self._cpu_lock = Resource(self.sim, capacity=1)
        directory.register(RelayDescriptor(self.name, host.name, host.ip))
        self._listener = self.tcp.listen(OR_PORT)
        self.sim.process(self._accept_loop(), name=f"{self.name}.accept")

    # -- connection handling -------------------------------------------------
    def _accept_loop(self):
        while True:
            conn = yield self._listener.accept()
            channel = MessageChannel(conn)
            self.sim.process(
                self._reader_loop(channel), name=f"{self.name}.reader"
            )

    def _reader_loop(self, channel: MessageChannel):
        """Read cells arriving on an upstream (client-facing) OR connection."""
        while True:
            cell, _size = yield from channel.recv()
            yield from self._handle_cell(channel, cell)

    def _next_hop_loop(self, circ_id: int, channel: MessageChannel):
        """Read backward cells arriving from the next hop of a circuit."""
        while True:
            cell, _size = yield from channel.recv()
            if isinstance(cell, RelayCell) and cell.direction == "bwd":
                yield from self._relay_backward(circ_id, cell.payload)

    # -- cell handling ---------------------------------------------------
    def _handle_cell(self, channel: MessageChannel, cell: Any):
        if isinstance(cell, CreateCell):
            yield from self._on_create(channel, cell)
        elif isinstance(cell, RelayCell) and cell.direction == "fwd":
            yield from self._on_forward(cell)
        # backward cells never arrive on upstream connections

    def _on_create(self, channel: MessageChannel, cell: CreateCell):
        key = KeyExchange.respond(cell.initiator, self.name, cell.nonce)
        self.circuits[cell.circ_id] = _CircuitState(key, channel)
        self.circuits_created += 1
        cpu = self.costs.tor_circuit_extend_cpu_s()
        self.host.cpu.consume(cpu)
        yield self.sim.timeout(cpu)
        channel.send(CreatedCell(cell.circ_id), CELL_SIZE)

    def _cell_work(self):
        """Serialized per-cell relay work: AES plus daemon CPU on the
        relay-wide lock — the throughput-limiting stage."""
        yield self._cpu_lock.request()
        cost = self.costs.aes(CELL_SIZE) + self.params.cell_serial_cpu_s
        self.host.cpu.consume(cost)
        yield self.sim.timeout(cost)
        self._cpu_lock.release()
        self.cells_relayed += 1

    def _send_later(self, send_fn: Callable[[], None]) -> None:
        """Deliver a processed cell after the pipeline latency (FIFO order
        is preserved: equal delays fire in scheduling order)."""
        self.sim.call_later(self.params.cell_latency_s, send_fn)

    def _on_forward(self, cell: RelayCell):
        state = self.circuits.get(cell.circ_id)
        if state is None:
            return
        yield from self._cell_work()
        inner = unseal(state.key, cell.payload)
        if isinstance(inner, Sealed):
            # More layers: not for us — push down the circuit.
            nxt = state.next
            if nxt is None:
                return  # malformed: nothing downstream
            self._send_later(
                lambda: nxt.send(RelayCell(cell.circ_id, inner, "fwd"), CELL_SIZE)
            )
            return
        # Innermost layer: a command addressed to this relay.
        if isinstance(inner, ExtendPayload):
            yield from self._do_extend(cell.circ_id, state, inner)
        elif isinstance(inner, BeginPayload):
            yield from self._do_begin(cell.circ_id, state, inner)
        elif isinstance(inner, DataPayload):
            if state.exit_conn is not None:
                state.exit_conn.send(inner.data)
                yield from self._count_delivery(cell.circ_id, state)
        elif isinstance(inner, SendmePayload):
            if state.bwd_window is not None:
                state.bwd_window.release(SENDME_EVERY_CELLS)
        elif isinstance(inner, EndPayload):
            if state.exit_conn is not None:
                state.exit_conn.close()

    def _count_delivery(self, circ_id: int, state: _CircuitState):
        """Exit-side bookkeeping: grant the client a SENDME per batch."""
        state.fwd_cells_delivered += 1
        if state.fwd_cells_delivered % SENDME_EVERY_CELLS == 0:
            yield from self._relay_backward(circ_id, SendmePayload())

    def _do_extend(self, circ_id: int, state: _CircuitState, ext: ExtendPayload):
        desc = self.directory.get(ext.next_relay)
        conn = yield self.tcp.connect(desc.ip, OR_PORT)
        channel = MessageChannel(conn)
        state.next = channel
        channel.send(CreateCell(circ_id, ext.session, ext.nonce), CELL_SIZE)
        created, _ = yield from channel.recv()
        assert isinstance(created, CreatedCell)
        self.sim.process(
            self._next_hop_loop(circ_id, channel), name=f"{self.name}.next"
        )
        yield from self._relay_backward(circ_id, ExtendedPayload())

    def _do_begin(self, circ_id: int, state: _CircuitState, begin: BeginPayload):
        conn = yield self.tcp.connect(begin.target_ip, begin.target_port)
        state.exit_conn = conn
        state.bwd_window = Window(self.sim, STREAM_WINDOW_CELLS)
        self.sim.process(
            self._exit_reader(circ_id, state, conn), name=f"{self.name}.exit"
        )
        yield from self._relay_backward(circ_id, ConnectedPayload())

    def _exit_reader(self, circ_id: int, state: _CircuitState, conn: TcpConnection):
        max_chunk = CELL_SIZE - 14  # leave room for the relay header
        while True:
            data = yield conn.recv(max_chunk)
            if not data:
                yield from self._relay_backward(circ_id, EndPayload())
                return
            # Stream-level flow control toward the client.
            yield from state.bwd_window.acquire()
            yield from self._relay_backward(circ_id, DataPayload(data))

    def _relay_backward(self, circ_id: int, payload: Any):
        """Seal with our key and push one hop toward the client."""
        state = self.circuits.get(circ_id)
        if state is None:
            return
        yield from self._cell_work()
        prev = state.prev
        sealed = seal(state.key, payload)
        self._send_later(
            lambda: prev.send(RelayCell(circ_id, sealed, "bwd"), CELL_SIZE)
        )
