"""MIC-specific intent invariants: prove each planned m-flow end to end.

Given the Mimic Controller's channel bookkeeping (its
:class:`~repro.core.channel.MFlowPlan` objects) and the installed tables,
these checks *replay* every m-flow symbolically — no packets injected — and
prove, per direction:

* **rewrite-chain consistency** — every hop carries exactly the planned
  per-segment m-address ⟨src, dst, sport, dport, mpls⟩; each MN hop rewrites
  into the next segment's address and the egress MN restores the real
  receiver (Sec IV-B2);
* **delivery** — the flow terminates at the planned endpoint host, never a
  table miss (blackhole), a silent drop, a punt, or a loop;
* **no plaintext-endpoint leak** — the initiator's real address appears only
  on the first segment and the receiver's only on the delivery segment
  (Sec IV-A1: the entry address "hides the address of the responder");
* **partial-multicast sanity** — decoy replicas fork at the first MN, die at
  an explicit drop rule, and never reach a real host — least of all the
  real receiver or its pod (Sec IV-C);
* **MAGA class membership** — every label was written by the MN that owns
  it, and the full tuple classifies back to the flow's live ID under that
  MN's four-variable hash (Sec IV-B3).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..net.network import Network
from .report import Severity, VerificationReport, Violation
from .symbolic import SymbolicHeader, apply_actions, winner_entry
from .verifier import port_neighbor_map

__all__ = ["verify_intents"]


def verify_intents(net: Network, mic, report: VerificationReport) -> None:
    """Replay every live m-flow of ``mic`` against the installed tables."""
    tables = {sw.name: sw.table for sw in net.switches()}
    neighbors = port_neighbor_map(net)
    for channel in mic.channels.values():
        for plan in channel.flows:
            report.checked_flows += 1
            _verify_maga(mic, channel, plan, report)
            # The anonymity strategy names the views to replay (forward,
            # reverse, plus any alias lanes under multiplexing); fall back
            # to the classic fwd/rev pair for strategy-less controllers.
            strategy = getattr(mic, "strategy", None)
            if strategy is not None:
                views = strategy.replay_views(plan)
            else:
                rev_walk = list(reversed(plan.walk))
                rev_mns = sorted(
                    len(plan.walk) - 1 - p for p in plan.mn_positions
                )
                views = [
                    (plan.walk, plan.mn_positions, plan.fwd_addrs),
                    (rev_walk, rev_mns, plan.rev_addrs),
                ]
            for walk, mns, addrs in views:
                _replay_direction(
                    net, mic, channel, plan, walk, addrs, tables, neighbors,
                    report,
                )


def _hdr_matches_addr(hdr: SymbolicHeader, addr, proto: str) -> bool:
    return (
        hdr.ip_src == addr.src_ip
        and hdr.ip_dst == addr.dst_ip
        and hdr.sport == addr.sport
        and hdr.dport == addr.dport
        and hdr.mpls == addr.mpls
        and hdr.proto == proto
    )


def _violation(kind: str, msg: str, channel, plan, **kw) -> Violation:
    return Violation(
        kind=kind,
        message=msg,
        channel_id=channel.channel_id,
        flow_id=plan.flow_id,
        **kw,
    )


def _replay_direction(
    net: Network,
    mic,
    channel,
    plan,
    walk: list[str],
    addrs: list,
    tables,
    neighbors,
    report: VerificationReport,
) -> None:
    """Symbolically walk one direction of one m-flow through the tables."""
    topo = net.topo
    real_src_ip = topo.host_ip(walk[0])
    real_dst_ip = topo.host_ip(walk[-1])
    last_seg = len(addrs) - 1
    entry_addr = addrs[0]
    hdr = SymbolicHeader(
        ip_src=entry_addr.src_ip,
        ip_dst=entry_addr.dst_ip,
        proto=plan.proto,
        sport=entry_addr.sport,
        dport=entry_addr.dport,
        mpls=entry_addr.mpls,
        in_port=net.port(walk[1], walk[0]),
    )
    node = walk[1]
    seg = 0
    visited: set[tuple] = set()
    max_hops = 4 * len(walk) + 32

    for _hop in range(max_hops):
        state = (node, hdr.key())
        if state in visited:
            report.add(_violation(
                "loop",
                f"m-flow revisits {node} with header {hdr.describe()} — "
                "forwarding loop",
                channel, plan, switch=node,
            ))
            return
        visited.add(state)
        table = tables.get(node)
        if table is None:
            # Arrived at a host: it must be the planned endpoint, with the
            # delivery address fully restored.
            if node != walk[-1] or seg != last_seg:
                report.add(_violation(
                    "misdelivery",
                    f"m-flow delivered to {node} in segment {seg}; planned "
                    f"endpoint is {walk[-1]} in segment {last_seg}",
                    channel, plan, switch=node,
                ))
            elif hdr.ip_dst != real_dst_ip:
                report.add(_violation(
                    "rewrite-chain",
                    f"delivered header {hdr.describe()} does not restore the "
                    f"real receiver address {real_dst_ip}",
                    channel, plan, switch=node,
                ))
            return

        entry = winner_entry(table.iter_entries(), hdr)
        if entry is None:
            report.add(_violation(
                "blackhole",
                f"m-flow header {hdr.describe()} misses the table on {node} "
                f"(segment {seg}) — packet would punt to the controller",
                channel, plan, switch=node,
            ))
            return
        result = apply_actions(entry.actions, hdr, table.groups)
        if not result.emissions:
            why = "punts to the controller" if result.punted else "is dropped"
            report.add(_violation(
                "blackhole",
                f"m-flow header {hdr.describe()} {why} on {node} "
                f"(segment {seg}) before reaching {walk[-1]}",
                channel, plan, switch=node, rule=entry.describe(),
            ))
            return

        # Partition the emissions into the planned continuation (the header
        # equals the current or next segment address) and decoy replicas.
        real_emission: Optional[tuple[int, SymbolicHeader, int]] = None
        decoys: list[tuple[int, SymbolicHeader]] = []
        for port, out_hdr in result.emissions:
            out_seg = None
            if _hdr_matches_addr(out_hdr, addrs[seg], plan.proto):
                out_seg = seg
            elif seg < last_seg and _hdr_matches_addr(
                out_hdr, addrs[seg + 1], plan.proto
            ):
                out_seg = seg + 1
            if out_seg is not None and real_emission is None:
                real_emission = (port, out_hdr, out_seg)
            else:
                decoys.append((port, out_hdr))

        if real_emission is None:
            expected = addrs[min(seg + 1, last_seg)]
            got = result.emissions[0][1]
            report.add(_violation(
                "rewrite-chain",
                f"rewrite on {node} diverges from the plan: got "
                f"{got.describe()}, expected segment address "
                f"⟨{addrs[seg].src_ip}->{addrs[seg].dst_ip}⟩ or "
                f"⟨{expected.src_ip}->{expected.dst_ip}⟩",
                channel, plan, switch=node, rule=entry.describe(),
            ))
            return
        for port, decoy_hdr in decoys:
            _trace_decoy(
                net, channel, plan, node, port, decoy_hdr, tables, neighbors,
                report,
            )

        port, out_hdr, seg = real_emission
        peer = neighbors.get((node, port))
        if peer is None:
            report.add(_violation(
                "blackhole",
                f"rule on {node} emits the m-flow to dead port {port}",
                channel, plan, switch=node, rule=entry.describe(),
            ))
            return
        # Plaintext-endpoint confinement (checked on every emitted link).
        if seg > 0 and out_hdr.ip_src == real_src_ip:
            report.add(_violation(
                "plaintext-leak",
                f"real initiator address {real_src_ip} visible on link "
                f"{node}->{peer} in segment {seg} (only segment 0 may carry "
                "it)",
                channel, plan, switch=node, rule=entry.describe(),
            ))
        if seg < last_seg and out_hdr.ip_dst == real_dst_ip:
            report.add(_violation(
                "plaintext-leak",
                f"real receiver address {real_dst_ip} visible on link "
                f"{node}->{peer} in segment {seg} (only the delivery segment "
                "may carry it)",
                channel, plan, switch=node, rule=entry.describe(),
            ))
        hdr = replace(out_hdr, in_port=net.port_map.get((peer, node)))
        node = peer

    report.add(_violation(
        "loop",
        f"m-flow did not terminate within {max_hops} hops — runaway path",
        channel, plan, switch=node,
    ))


def _trace_decoy(
    net: Network,
    channel,
    plan,
    origin: str,
    port: int,
    hdr: SymbolicHeader,
    tables,
    neighbors,
    report: VerificationReport,
) -> None:
    """Follow one decoy replica; it must die at an explicit drop rule."""
    topo = net.topo
    responder_pod = topo.graph.nodes[channel.responder].get("pod")
    stack: list[tuple[str, int, SymbolicHeader]] = []
    peer = neighbors.get((origin, port))
    if peer is None:
        return
    stack.append((peer, port, replace(hdr, in_port=net.port_map.get((peer, origin)))))
    visited: set[tuple] = set()
    while stack:
        node, from_port, cur = stack.pop()
        if node not in tables:
            # A decoy replica reached a real host.
            if node == channel.responder or (
                responder_pod is not None
                and topo.graph.nodes[node].get("pod") == responder_pod
            ):
                report.add(_violation(
                    "decoy-to-receiver",
                    f"decoy replica from {origin} reaches {node} — the real "
                    f"receiver{'' if node == channel.responder else chr(39) + 's pod'}"
                    f" (header {cur.describe()})",
                    channel, plan, switch=origin,
                ))
            else:
                report.add(_violation(
                    "decoy-delivered",
                    f"decoy replica from {origin} is delivered to host "
                    f"{node} (header {cur.describe()}); decoys must be "
                    "dropped inside the fabric",
                    channel, plan, switch=origin,
                ))
            continue
        state = (node, cur.key())
        if state in visited:
            continue
        visited.add(state)
        table = tables[node]
        entry = winner_entry(table.iter_entries(), cur)
        if entry is None:
            report.add(_violation(
                "decoy-unterminated",
                f"decoy replica dies by table miss on {node} instead of an "
                f"explicit drop rule (header {cur.describe()})",
                channel, plan, switch=node, severity=Severity.WARNING,
            ))
            continue
        result = apply_actions(entry.actions, cur, table.groups)
        if result.dropped and not result.emissions:
            continue  # the planned fate: an explicit drop
        if not result.emissions:
            report.add(_violation(
                "decoy-unterminated",
                f"decoy replica punts to the controller from {node} "
                f"(header {cur.describe()})",
                channel, plan, switch=node, rule=entry.describe(),
                severity=Severity.WARNING,
            ))
            continue
        for out_port, out_hdr in result.emissions:
            nxt = neighbors.get((node, out_port))
            if nxt is None:
                continue
            stack.append((
                nxt,
                out_port,
                replace(out_hdr, in_port=net.port_map.get((nxt, node))),
            ))


def _verify_maga(mic, channel, plan, report: VerificationReport) -> None:
    """Label-space and hash-class membership of every drawn m-address."""
    directions = (
        (plan.walk, plan.mn_positions, plan.fwd_addrs, "fwd"),
        (
            list(reversed(plan.walk)),
            sorted(len(plan.walk) - 1 - p for p in plan.mn_positions),
            plan.rev_addrs,
            "rev",
        ),
    )
    for walk, mns, addrs, tag in directions:
        last_seg = len(addrs) - 1
        for k, addr in enumerate(addrs):
            labeled = 0 < k < last_seg
            if not labeled:
                if addr.mpls is not None:
                    report.add(_violation(
                        "maga-class",
                        f"{tag} segment {k} is host-adjacent but carries "
                        f"MPLS label {addr.mpls} (hosts cannot parse shims)",
                        channel, plan,
                    ))
                continue
            mn = walk[mns[k - 1]]
            owner = mic.labels.owner_of(addr.mpls)
            if owner != mn:
                report.add(_violation(
                    "maga-class",
                    f"{tag} segment {k} label {addr.mpls} written by {mn} "
                    f"belongs to {owner!r}, not the rewriting MN — MN label "
                    "sets must be disjoint",
                    channel, plan, switch=mn,
                ))
                continue
            fid = mic.mn_spaces[mn].flow_id_of(
                addr.src_ip, addr.dst_ip, addr.mpls
            )
            if fid != plan.flow_id:
                report.add(_violation(
                    "maga-class",
                    f"{tag} segment {k} tuple "
                    f"⟨{addr.src_ip},{addr.dst_ip},{addr.mpls}⟩ classifies "
                    f"to flow {fid} under {mn}'s hash, not flow "
                    f"{plan.flow_id} — match-entry uniqueness is broken",
                    channel, plan, switch=mn,
                ))
