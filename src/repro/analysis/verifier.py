"""Static data-plane verifier for an installed :class:`Network` configuration.

Three layers of checks, all over the installed flow/group tables and none
requiring a single packet to be injected:

* **table-local** (:func:`verify_tables`) — shadowed/unreachable entries,
  same-priority overlaps with divergent actions, literal duplicates,
  dangling group references and dead output ports;
* **match-key uniqueness** (:func:`verify_match_keys`) — the MIC invariant
  of Sec IV-B3, re-proved from the installed rules themselves: no two
  owners (cookies) may share one ⟨src, dst, mpls, sport, dport⟩ key on a
  switch, optionally cross-checked against the runtime
  :class:`repro.core.collision.CollisionRegistry`;
* **forwarding graph** (:func:`verify_forwarding`) — rewrite-aware symbolic
  traversal from every installed rule, detecting loops that survive header
  rewriting (a header class returning to a switch it already crossed).

:func:`verify_network` bundles the layers and, given a Mimic Controller,
adds the per-m-flow intent checks from :mod:`repro.analysis.invariants`.
"""

from __future__ import annotations

from dataclasses import replace as _replace
from typing import Iterable, Optional

from ..net.flowtable import FlowEntry, Group, Match
from ..net.network import Network
from .report import Severity, VerificationReport, Violation
from .symbolic import (
    SymbolicHeader,
    apply_actions,
    candidate_entries,
    header_from_match,
    refine,
)

__all__ = [
    "verify_network",
    "verify_tables",
    "verify_match_keys",
    "verify_forwarding",
    "port_neighbor_map",
    "match_key",
]

#: traversal budget per origin rule (states), far above any legal path
_MAX_STATES_PER_ORIGIN = 512


def port_neighbor_map(net: Network) -> dict[tuple[str, int], str]:
    """Reverse the port wiring: (node, local port) → neighbor node name."""
    return {
        (node, port): neighbor
        for (node, neighbor), port in net.port_map.items()
    }


def match_key(match: Match) -> tuple:
    """The collision-registry key of a rule: ⟨src, dst, mpls, sport, dport⟩.

    String addresses and a ``None`` for "no shim" — exactly the form
    :class:`CollisionRegistry` records, so static and runtime bookkeeping
    compare bit-for-bit.
    """
    mpls = None if match.mpls == Match.NO_MPLS else match.mpls
    return (str(match.ip_src), str(match.ip_dst), mpls, match.sport, match.dport)


def _actions_equal(a: FlowEntry, b: FlowEntry) -> bool:
    return list(a.actions) == list(b.actions)


# ----------------------------------------------------------------------
# Layer 1: table-local checks
# ----------------------------------------------------------------------
def verify_tables(net: Network, report: VerificationReport) -> None:
    """Per-switch structural checks on every installed table."""
    neighbors = port_neighbor_map(net)
    for sw in net.switches():
        # Entry-view snapshot: priority-desc, insertion order.
        entries = list(sw.table.iter_entries())
        groups = sw.table.groups
        report.checked_switches += 1
        report.checked_rules += len(entries)
        report.checked_groups += len(groups)

        for entry in entries:
            for action in entry.actions:
                if isinstance(action, Group) and action.group_id not in groups:
                    report.add(Violation(
                        kind="dangling-group",
                        message=(
                            f"rule on {sw.name} references group "
                            f"{action.group_id} which is not installed"
                        ),
                        switch=sw.name,
                        rule=entry.describe(),
                    ))
            for port, _hdr in _static_outputs(entry, groups):
                if (sw.name, port) not in neighbors:
                    report.add(Violation(
                        kind="dangling-port",
                        message=(
                            f"rule on {sw.name} outputs to port {port}, "
                            "which has no link behind it"
                        ),
                        switch=sw.name,
                        rule=entry.describe(),
                    ))

        for i, hi in enumerate(entries):
            for lo in entries[i + 1:]:
                _check_pair(sw.name, hi, lo, report)


def _static_outputs(entry: FlowEntry, groups) -> list[tuple[int, SymbolicHeader]]:
    result = apply_actions(entry.actions, header_from_match(entry.match), groups)
    return result.emissions


def _check_pair(
    switch: str, hi: FlowEntry, lo: FlowEntry, report: VerificationReport
) -> None:
    """Conflict analysis for one ordered entry pair (hi precedes lo)."""
    if not hi.match.intersects(lo.match):
        return
    if hi.match.covers(lo.match):
        if hi.priority == lo.priority:
            if _actions_equal(hi, lo):
                report.add(Violation(
                    kind="duplicate-rule",
                    severity=Severity.WARNING,
                    message=(
                        f"entry #{lo.entry_id} on {switch} is redundant: "
                        f"covered at equal priority by entry #{hi.entry_id} "
                        "with identical actions"
                    ),
                    switch=switch,
                    rule=lo.describe(),
                ))
            else:
                report.add(Violation(
                    kind="overlap",
                    message=(
                        f"same-priority rules on {switch} overlap with "
                        f"divergent actions; entry #{hi.entry_id} wins only "
                        f"by insertion order over #{lo.entry_id}"
                    ),
                    switch=switch,
                    rule=f"{hi.describe()}  vs  {lo.describe()}",
                ))
        else:
            report.add(Violation(
                kind="shadowed-rule",
                severity=(
                    Severity.ERROR
                    if not _actions_equal(hi, lo)
                    else Severity.WARNING
                ),
                message=(
                    f"entry #{lo.entry_id} on {switch} is unreachable: "
                    f"fully shadowed by higher-priority entry #{hi.entry_id}"
                ),
                switch=switch,
                rule=f"shadowed: {lo.describe()}  by: {hi.describe()}",
            ))
    elif hi.priority == lo.priority and not _actions_equal(hi, lo):
        report.add(Violation(
            kind="overlap",
            message=(
                f"same-priority rules on {switch} partially overlap with "
                f"divergent actions; packets in the intersection hit entry "
                f"#{hi.entry_id} only by insertion order (over #{lo.entry_id})"
            ),
            switch=switch,
            rule=f"{hi.describe()}  vs  {lo.describe()}",
        ))


# ----------------------------------------------------------------------
# Layer 2: MIC match-key uniqueness
# ----------------------------------------------------------------------
def verify_match_keys(
    net: Network,
    report: VerificationReport,
    priorities: Iterable[int],
    registry=None,
) -> None:
    """No two owners may install the same match key on one switch.

    ``priorities`` selects the MIC-managed rules (m-flow + decoy-drop
    bands).  With a ``registry``, every installed key must also be known to
    the runtime :class:`CollisionRegistry` — the static proof and the
    dynamic defence-in-depth bookkeeping must agree.
    """
    prios = sorted(set(priorities), reverse=True)
    for sw in net.switches():
        by_key: dict[tuple, list[FlowEntry]] = {}
        # The per-priority entry view selects exactly the MIC-managed bands
        # without scanning the (potentially huge) rest of the table.
        for prio in prios:
            for entry in sw.table.entries_at(prio):
                by_key.setdefault(match_key(entry.match), []).append(entry)
        for key, owners in by_key.items():
            cookies = {e.cookie for e in owners}
            if len(cookies) > 1:
                rendered = "  |  ".join(e.describe() for e in owners)
                report.add(Violation(
                    kind="duplicate-match-key",
                    message=(
                        f"match key {key} on {sw.name} is installed by "
                        f"{len(cookies)} distinct flows "
                        f"(cookies {sorted(f'{c:#x}' for c in cookies)})"
                    ),
                    switch=sw.name,
                    rule=rendered,
                ))
            if registry is not None and registry.owner(sw.name, key) is None:
                report.add(Violation(
                    kind="registry-mismatch",
                    message=(
                        f"match key {key} is installed on {sw.name} but "
                        "unknown to the collision registry"
                    ),
                    switch=sw.name,
                    rule=owners[0].describe(),
                ))


# ----------------------------------------------------------------------
# Layer 3: rewrite-aware forwarding-graph traversal
# ----------------------------------------------------------------------
def verify_forwarding(net: Network, report: VerificationReport) -> None:
    """Detect forwarding loops from every installed rule.

    Each rule seeds a traversal with the header class of its own match;
    the class is pushed through the rule's rewrites and followed across
    links, refining through every rule it could hit downstream.  A header
    class revisiting a switch state already on the current path is a loop —
    rewrites are part of the state, so "A rewrites to B, B rewrites back to
    A" two switches apart is caught, not just port-level cycles.
    """
    neighbors = port_neighbor_map(net)
    tables = {sw.name: sw.table for sw in net.switches()}
    for sw in net.switches():
        for origin in sw.table.iter_entries():
            _trace_origin(net, sw.name, origin, tables, neighbors, report)


def _trace_origin(
    net: Network,
    origin_switch: str,
    origin: FlowEntry,
    tables,
    neighbors,
    report: VerificationReport,
) -> None:
    start = header_from_match(origin.match)
    # DFS with an explicit stack; `path` holds the states on the current
    # branch so diamonds (reconvergence) are pruned, not reported as loops.
    visited: set[tuple] = set()
    budget = _MAX_STATES_PER_ORIGIN

    def dfs(node: str, hdr: SymbolicHeader, path: frozenset) -> None:
        nonlocal budget
        if budget <= 0:
            return
        budget -= 1
        state = (node, hdr.key())
        if state in path:
            report.add(Violation(
                kind="loop",
                message=(
                    f"forwarding loop: header {hdr.describe()} returns to "
                    f"{node} (seeded by rule on {origin_switch})"
                ),
                switch=node,
                rule=origin.describe(),
            ))
            return
        if state in visited:
            return
        visited.add(state)
        table = tables.get(node)
        if table is None:  # host: traffic leaves the fabric here
            return
        for entry in candidate_entries(table.iter_entries(), hdr):
            refined = refine(entry.match, hdr)
            result = apply_actions(entry.actions, refined, table.groups)
            for port, out_hdr in result.emissions:
                peer = neighbors.get((node, port))
                if peer is None:
                    continue  # dead port; verify_tables reports it
                next_hdr = _replace(
                    out_hdr,
                    in_port=net.port_map.get((peer, node), out_hdr.in_port),
                )
                dfs(peer, next_hdr, path | {state})

    dfs(origin_switch, start, frozenset())


# ----------------------------------------------------------------------
# Bundle
# ----------------------------------------------------------------------
def verify_network(
    net: Network,
    mic=None,
    registry=None,
    check_tables: bool = True,
    check_forwarding: bool = True,
    check_intents: bool = True,
    mic_priorities: Optional[Iterable[int]] = None,
) -> VerificationReport:
    """Statically verify an installed network configuration.

    ``mic`` (a :class:`repro.core.controller.MimicController`, duck-typed)
    unlocks the intent-level invariants: per-m-flow rewrite-chain replay,
    plaintext-leak and partial-multicast checks, MAGA class membership, and
    the registry cross-check (``registry`` defaults to ``mic.registry``).
    """
    report = VerificationReport()
    if registry is None and mic is not None:
        registry = getattr(mic, "registry", None)
    if mic_priorities is None:
        from ..core.controller import DECOY_DROP_PRIORITY, MIC_PRIORITY
        mic_priorities = (MIC_PRIORITY, DECOY_DROP_PRIORITY)

    if check_tables:
        verify_tables(net, report)
    verify_match_keys(net, report, mic_priorities, registry=registry)
    if check_forwarding:
        verify_forwarding(net, report)
    if check_intents and mic is not None:
        from .invariants import verify_intents
        verify_intents(net, mic, report)
    return report
