"""MIC user-end module: socket-like anonymous communication API (Sec VI).

The paper ships a user-space library with "socket like programming APIs".
This module provides it:

* :class:`MicEndpoint` — the initiator side.  ``connect()`` sends the
  encrypted channel request to the MC, receives the grant, opens one TCP
  connection per m-flow from the MC-assigned source port to each entry
  address, and returns a :class:`MicStream`.
* :class:`MicServer` — the responder side.  Accepts the per-m-flow TCP
  connections, groups them by channel token, and exposes each channel as a
  :class:`MicStream`.
* :class:`MicStream` — a bidirectional byte stream that slices outgoing data
  across the channel's m-flows (the multiple-m-flows mechanism) and
  reassembles incoming chunks.

No kernel or protocol-stack changes are required — everything here is plain
sockets plus header bytes, exactly the paper's deployability goal.
"""

from __future__ import annotations

from typing import Optional, Union

from ..crypto import DEFAULT_COSTS, CryptoCostModel, seal, unseal
from ..net.addresses import IPv4Addr
from ..net.host import Host
from ..net.packet import Packet
from ..obs.spans import begin as begin_span
from ..sim import Event, Store
from ..transport.tcp import TcpConnection, TcpError, TcpStack
from ..transport.udp import Datagram, UdpSocket
from .controller import (
    MC_IP,
    MC_PORT,
    REQUEST_WIRE_BYTES,
    McReply,
    McRequest,
    MimicController,
)
from .multiflow import CHUNK_HEADER, Reassembler, Slicer, decode_header

__all__ = [
    "MicDatagramServer",
    "MicDatagramSocket",
    "MicEndpoint",
    "MicError",
    "MicServer",
    "MicStream",
]


class MicError(Exception):
    """Channel establishment or stream failure."""


class MicStream:
    """A bidirectional anonymous byte stream over one mimic channel."""

    def __init__(self, sim, token: int, rng, channel_id: int = 0,
                 host: Optional[Host] = None):
        self.sim = sim
        self.token = token
        self.channel_id = channel_id
        self.host = host  # set lazily from the first connection if None
        self.conns: list[TcpConnection] = []
        self._slicer = Slicer(token, 1, rng)
        self._reassembler = Reassembler(token)
        self._waiters: list[tuple[int, Event]] = []
        self._eof = False
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- connection management -----------------------------------------
    def add_conn(self, conn: TcpConnection, pump: bool = True) -> None:
        """Attach one m-flow TCP connection (optionally start its pump)."""
        if self.host is None:
            self.host = conn.host
        self.conns.append(conn)
        self._slicer.n_flows = len(self.conns)
        if pump:
            self.sim.process(self._pump(conn), name="mic-stream.pump")

    def _pump(self, conn: TcpConnection):
        while True:
            try:
                hdr = yield from conn.recv_exactly(CHUNK_HEADER.size)
            except TcpError:
                self.feed_eof()
                return
            token, seq, length = decode_header(hdr)
            payload = b""
            if length:
                try:
                    payload = yield from conn.recv_exactly(length)
                except TcpError:
                    self.feed_eof()
                    return
            self.feed(seq, payload)

    # -- incoming ----------------------------------------------------------
    def feed(self, seq: int, payload: bytes) -> None:
        """Deliver one reassembly chunk into the stream."""
        self._reassembler.push(self.token, seq, payload)
        self.bytes_received += len(payload)
        self._serve()

    def feed_eof(self) -> None:
        """Signal that an underlying connection hit EOF."""
        self._eof = True
        self._serve()

    def _serve(self) -> None:
        while self._waiters:
            n, ev = self._waiters[0]
            if ev.triggered:
                self._waiters.pop(0)
                continue
            if self._reassembler.available:
                self._waiters.pop(0)
                ev.succeed(self._reassembler.take(n))
            elif self._eof and not self._reassembler.pending_chunks:
                self._waiters.pop(0)
                ev.succeed(b"")
            else:
                break

    # -- API ----------------------------------------------------------------
    @property
    def flow_count(self) -> int:
        """Number of attached m-flow connections."""
        return len(self.conns)

    def send(self, data: bytes) -> None:
        """Slice across m-flows and transmit (returns immediately)."""
        if not self.conns:
            raise MicError("stream has no connections")
        for flow_idx, wire in self._slicer.slice(data):
            self.conns[flow_idx].send(wire)
        self.bytes_sent += len(data)

    def recv(self, n: int) -> Event:
        """Event firing with up to ``n`` bytes (``b""`` on EOF)."""
        if n <= 0:
            raise ValueError("recv size must be positive")
        ev = self.sim.event()
        self._waiters.append((n, ev))
        self._serve()
        return ev

    def recv_exactly(self, n: int):
        """Process helper: ``data = yield from stream.recv_exactly(n)``."""
        chunks = []
        remaining = n
        while remaining > 0:
            chunk = yield self.recv(remaining)
            if not chunk:
                raise MicError("mic stream closed before full read")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        """Close every underlying m-flow connection."""
        for conn in self.conns:
            conn.close()


class MicEndpoint:
    """Initiator-side MIC library instance for one host.

    The constructor takes the :class:`MimicController` only to obtain the
    pre-exchanged client key (the paper's out-of-band RSA/DH exchange) —
    no channel state is shared out of band.
    """

    def __init__(
        self,
        host: Host,
        mic: MimicController,
        costs: CryptoCostModel = DEFAULT_COSTS,
    ):
        self.host = host
        self.sim = host.sim
        self.mic = mic
        self.costs = costs
        self.tcp = TcpStack(host)
        self.rng = self.sim.rng(f"mic-client-{host.name}")
        self._key = mic.client_key(host.name)
        #: channel reuse cache: responder spec -> open MicStream
        self._cache: dict[tuple, MicStream] = {}
        self.notify_interval_s: Optional[float] = None

    # ------------------------------------------------------------------
    def connect(
        self,
        responder: Union[str, IPv4Addr],
        service_port: int = 0,
        n_flows: int = 1,
        n_mns: int = 3,
        decoys: int = 0,
        reuse: bool = False,
    ):
        """Process generator: establish a channel → :class:`MicStream`.

        With ``reuse=True`` an open channel to the same responder is
        returned instead of establishing a new one (Sec IV-B1's channel
        reuse for massive short communications).
        """
        cache_key = (str(responder), service_port)
        if reuse and cache_key in self._cache:
            return self._cache[cache_key]

        span = begin_span(
            self.host.obs, "mic.connect",
            initiator=self.host.name, responder=responder, n_mns=n_mns,
        )
        grant = yield from self._request_channel(
            responder, service_port, n_flows, n_mns, decoys
        )
        stream = MicStream(
            self.sim, token=grant.channel_id, rng=self.rng,
            channel_id=grant.channel_id,
        )
        for fg in grant.flows:
            conn = yield self.tcp.connect(
                fg.entry_ip, fg.entry_port, local_port=fg.source_port
            )
            stream.add_conn(conn)
        span.finish()
        if reuse:
            self._cache[cache_key] = stream
        if self.notify_interval_s is not None:
            self.sim.process(
                self._notify_loop(grant.channel_id), name="mic-client.notify"
            )
        return stream

    def connect_datagram(
        self,
        responder: Union[str, IPv4Addr],
        service_port: int = 0,
        n_mns: int = 3,
        decoys: int = 0,
    ):
        """Process generator: establish a UDP mimic channel →
        :class:`MicDatagramSocket`.

        One m-flow only: datagrams have no stream to slice.  The socket is
        bound to the MC-assigned source port, exactly like the TCP path.
        """
        grant = yield from self._request_channel(
            responder, service_port, 1, n_mns, decoys, proto="udp"
        )
        fg = grant.flows[0]
        sock = UdpSocket(self.host, port=fg.source_port)
        return MicDatagramSocket(sock, fg.entry_ip, fg.entry_port,
                                 channel_id=grant.channel_id,
                                 alt_entries=fg.alt_entries)

    def _request_channel(
        self,
        responder: Union[str, IPv4Addr],
        service_port: int,
        n_flows: int,
        n_mns: int,
        decoys: int,
        proto: str = "tcp",
    ):
        reply_port = self.host.ephemeral_port()
        inbox: Store = Store(self.sim)
        self.host.bind("udp", reply_port, lambda _h, p: inbox.put(p))
        try:
            request = McRequest(
                kind="establish",
                reply_port=reply_port,
                responder=responder,
                service_port=service_port,
                n_flows=n_flows,
                n_mns=n_mns,
                decoys=decoys,
                proto=proto,
            )
            yield from self._send_mc(request, reply_port)
            reply_pkt = yield inbox.get()
            reply = yield from self._open_reply(reply_pkt)
            if not reply.ok or reply.grant is None:
                raise MicError(f"MC refused channel: {reply.error}")
            return reply.grant
        finally:
            self.host.unbind("udp", reply_port)

    def _send_mc(self, request: McRequest, reply_port: int):
        cost = self.costs.aes(REQUEST_WIRE_BYTES)
        self.host.cpu.consume(cost)
        yield self.sim.timeout(cost)
        pkt = self.host.make_packet(
            MC_IP,
            proto="udp",
            sport=reply_port,
            dport=MC_PORT,
            payload=seal(self._key, request),
            payload_size=REQUEST_WIRE_BYTES,
        )
        self.host.send_packet(pkt)

    def _open_reply(self, reply_pkt: Packet):
        cost = self.costs.aes(reply_pkt.payload_size)
        self.host.cpu.consume(cost)
        yield self.sim.timeout(cost)
        reply = unseal(self._key, reply_pkt.payload)
        if not isinstance(reply, McReply):
            raise MicError("malformed MC reply")
        return reply

    # -- lifecycle helpers ----------------------------------------------------
    def shutdown(self, stream: MicStream):
        """Process generator: close the stream and tell the MC."""
        stream.close()
        for key, cached in list(self._cache.items()):
            if cached is stream:
                del self._cache[key]
        reply_port = self.host.ephemeral_port()
        inbox: Store = Store(self.sim)
        self.host.bind("udp", reply_port, lambda _h, p: inbox.put(p))
        try:
            yield from self._send_mc(
                McRequest(kind="shutdown", reply_port=reply_port,
                          channel_id=stream.channel_id),
                reply_port,
            )
            yield inbox.get()
        finally:
            self.host.unbind("udp", reply_port)

    def _notify_loop(self, channel_id: int):
        """Periodic activity notifications (Sec IV-B1's dedicated module)."""
        while channel_id in self.mic.channels:
            yield self.sim.timeout(self.notify_interval_s)
            if channel_id not in self.mic.channels:
                return
            reply_port = self.host.ephemeral_port()
            inbox: Store = Store(self.sim)
            self.host.bind("udp", reply_port, lambda _h, p: inbox.put(p))
            try:
                yield from self._send_mc(
                    McRequest(kind="notify", reply_port=reply_port,
                              channel_id=channel_id),
                    reply_port,
                )
                yield inbox.get()
            finally:
                self.host.unbind("udp", reply_port)


class MicDatagramSocket:
    """Initiator-side datagram channel: fire-and-forget through the fabric.

    Under a multiplexing anonymity strategy (FRVM) the grant carries
    alias entry lanes; sends round-robin across every granted lane so no
    single observed entry address covers the conversation.
    """

    def __init__(self, sock: UdpSocket, entry_ip: IPv4Addr, entry_port: int,
                 channel_id: int = 0, alt_entries: tuple = ()):
        self.sock = sock
        self.entry_ip = entry_ip
        self.entry_port = entry_port
        self.channel_id = channel_id
        self.lanes: tuple = ((entry_ip, entry_port), *alt_entries)
        self._next_lane = 0

    def send(self, data: bytes) -> None:
        """Send one datagram into the mimic channel (striped across lanes)."""
        ip, port = self.lanes[self._next_lane]
        self._next_lane = (self._next_lane + 1) % len(self.lanes)
        self.sock.sendto(data, ip, port)

    def recv(self):
        """Event firing with the next reply :class:`Datagram`."""
        return self.sock.recvfrom()

    def close(self) -> None:
        """Close the underlying UDP socket."""
        self.sock.close()


class MicDatagramServer:
    """Responder-side datagram endpoint.

    Replies go back to the mimic source the datagram arrived with; the
    reverse rules carry them home.
    """

    def __init__(self, host: Host, port: int):
        self.host = host
        self.port = port
        self.sock = UdpSocket(host, port=port)

    def recv(self):
        """Event firing with the next received :class:`Datagram`."""
        return self.sock.recvfrom()

    def reply(self, datagram: Datagram, data: bytes) -> None:
        """Answer a datagram via its (mimic) source address."""
        self.sock.sendto(data, datagram.src_ip, datagram.sport)

    def close(self) -> None:
        """Close the service socket."""
        self.sock.close()


class MicServer:
    """Responder-side MIC library: accept mimic channels as streams."""

    def __init__(self, host: Host, port: int):
        self.host = host
        self.sim = host.sim
        self.port = port
        self.tcp = TcpStack(host)
        self._listener = self.tcp.listen(port)
        self._streams: dict[int, MicStream] = {}
        self._accept_box: Store = Store(self.sim)
        self.rng = self.sim.rng(f"mic-server-{host.name}")
        self.sim.process(self._accept_loop(), name=f"mic-server-{host.name}")

    def accept(self) -> Event:
        """Event firing with the next new channel's :class:`MicStream`."""
        return self._accept_box.get()

    def _accept_loop(self):
        while True:
            conn = yield self._listener.accept()
            self.sim.process(self._conn_reader(conn), name="mic-server.reader")

    def _conn_reader(self, conn: TcpConnection):
        # The first chunk on a connection reveals the channel token.
        try:
            hdr = yield from conn.recv_exactly(CHUNK_HEADER.size)
        except TcpError:
            return
        token, seq, length = decode_header(hdr)
        payload = b""
        if length:
            try:
                payload = yield from conn.recv_exactly(length)
            except TcpError:
                return
        stream = self._streams.get(token)
        if stream is None:
            stream = MicStream(self.sim, token=token, rng=self.rng,
                               channel_id=token)
            self._streams[token] = stream
            self._accept_box.put(stream)
        stream.add_conn(conn, pump=False)
        stream.feed(seq, payload)
        # Continue pumping this connection into the stream.
        yield from stream._pump(conn)
