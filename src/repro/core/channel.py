"""Mimic channel and m-flow state objects.

A *mimic channel* (Sec III-A) is the anonymous conduit between an initiator
and a responder.  It consists of one or more *m-flows*, each with its own
walk through the fabric, its own Mimic Nodes, and its own per-segment
m-addresses.  These dataclasses are the MC's bookkeeping; the controller
compiles them into switch rules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..net.addresses import IPv4Addr
from .collision import MAddress

__all__ = ["MFlowPlan", "MimicChannel", "FlowGrant", "ChannelGrant"]

_channel_ids = itertools.count(1)


def next_channel_id() -> int:
    """Allocate a fresh channel identifier."""
    return next(_channel_ids)


@dataclass
class MFlowPlan:
    """Everything the MC decided for one m-flow (one direction pair)."""

    flow_id: int
    walk: list[str]  # [initiator, s…, responder]; may revisit switches
    mn_positions: list[int]  # indices into walk (switch visits that rewrite)
    fwd_addrs: list[MAddress]  # N+1 segment addresses, fwd_addrs[0] = entry
    rev_addrs: list[MAddress]  # mirrored for the reply direction
    cookie: int
    proto: str = "tcp"  # transport the rules match ("tcp" | "udp")
    #: extra simultaneous entry addresses (FRVM-style multiplexing); drawn
    #: by the anonymity strategy's ``finish_plan`` hook, empty for MIC
    aliases: tuple = ()

    @property
    def mn_names(self) -> list[str]:
        """The switches acting as MNs, in path order."""
        return [self.walk[p] for p in self.mn_positions]

    @property
    def entry(self) -> MAddress:
        """The initiator-facing segment address (A[0])."""
        return self.fwd_addrs[0]

    @property
    def delivery(self) -> MAddress:
        """The responder-facing segment address (A[N])."""
        return self.fwd_addrs[-1]

    def segment_count(self) -> int:
        """Number of per-segment addresses (N+1)."""
        return len(self.fwd_addrs)


@dataclass
class MimicChannel:
    """Live channel state held by the MC."""

    channel_id: int
    initiator: str  # host name
    responder: str  # host name
    flows: list[MFlowPlan]
    created_at: float
    last_activity: float
    state: str = "established"  # "established" | "closed"
    decoys: int = 0

    @property
    def flow_count(self) -> int:
        """Number of m-flows in this channel."""
        return len(self.flows)

    def touch(self, now: float) -> None:
        """Record channel activity at ``now``."""
        self.last_activity = now

    def idle_for(self, now: float) -> float:
        """Seconds since the last recorded activity."""
        return now - self.last_activity


@dataclass(frozen=True)
class FlowGrant:
    """What the initiator learns about one m-flow — and nothing more.

    The entry address hides the responder; the assigned source port lets the
    MC pin the full reverse rewrite without kernel changes (the user-end
    module binds it)."""

    entry_ip: IPv4Addr
    entry_port: int
    source_port: int
    #: alternative (alias) entry lanes as ``(ip, port)`` pairs — non-empty
    #: only under multiplexing strategies (FRVM)
    alt_entries: tuple = ()


@dataclass(frozen=True)
class ChannelGrant:
    """The MC's acknowledgement to a channel request."""

    channel_id: int
    flows: tuple[FlowGrant, ...]

    @property
    def flow_count(self) -> int:
        """Number of granted m-flows."""
        return len(self.flows)
