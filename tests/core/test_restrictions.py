"""Unit tests for per-link m-address plausibility restrictions."""

import random

import pytest

from repro.core.restrictions import AddressRestrictions
from repro.net import fat_tree, linear
from repro.sdn import TopologyView


@pytest.fixture(scope="module")
def ft():
    view = TopologyView(fat_tree(4))
    return view, AddressRestrictions(view)


class TestLinkPlausibility:
    def test_host_uplink_sources_are_that_host(self, ft):
        view, r = ft
        pairs = r.plausible_pairs("h1", "p0e0")
        assert pairs and all(a == "h1" for a, _ in pairs)

    def test_host_downlink_destinations_are_that_host(self, ft):
        view, r = ft
        pairs = r.plausible_pairs("p0e0", "h1")
        assert pairs and all(b == "h1" for _, b in pairs)

    def test_cached(self, ft):
        view, r = ft
        assert r.plausible_pairs("h1", "p0e0") is r.plausible_pairs("h1", "p0e0")

    def test_is_plausible(self, ft):
        view, r = ft
        assert r.is_plausible("h1", "p0e0", "h1", "h5")
        assert not r.is_plausible("h1", "p0e0", "h2", "h5")


class TestSegmentPlausibility:
    def test_whole_shortest_path_segment(self, ft):
        view, r = ft
        path = view.shortest_path("h1", "h16")
        pairs = r.pairs_for_segment(path)
        # The true endpoints must be plausible for their own path.
        assert ("h1", "h16") in pairs

    def test_interior_segment_mixes_many_pairs(self, ft):
        view, r = ft
        path = view.shortest_path("h1", "h16")
        interior = path[2:-2]  # agg-core-agg
        pairs = r.pairs_for_segment(interior)
        # Many host pairs route through the same core segment.
        assert len(pairs) > 1

    def test_empty_segment_returns_universe(self, ft):
        view, r = ft
        pairs = r.pairs_for_segment(["p0e0"])
        hosts = view.topo.hosts()
        assert len(pairs) == len(hosts) * (len(hosts) - 1)

    def test_bounce_segment_falls_back(self):
        view = TopologyView(linear(3, hosts_per_switch=1))
        r = AddressRestrictions(view)
        # s2->s3->s2 is never on a shortest path as a whole.
        pairs = r.pairs_for_segment(["s2", "s3", "s2"])
        assert pairs  # falls back to the first link's set
        first = set(r.plausible_pairs("s2", "s3"))
        assert set(pairs) <= first


class TestSampling:
    def test_sample_is_member(self, ft):
        view, r = ft
        rng = random.Random(0)
        path = view.shortest_path("h1", "h16")
        pool = set(r.pairs_for_segment(path))
        for _ in range(20):
            assert r.sample_pair(path, rng) in pool

    def test_sample_avoids_when_possible(self, ft):
        view, r = ft
        rng = random.Random(1)
        seg = ["p0a0", "c1"]
        pool = r.pairs_for_segment(seg)
        avoid = pool[:-1]  # leave exactly one allowed pair
        for _ in range(10):
            assert r.sample_pair(seg, rng, avoid=avoid) == pool[-1]

    def test_sample_ignores_avoid_when_exhaustive(self, ft):
        view, r = ft
        rng = random.Random(2)
        seg = ["h1", "p0e0"]
        pool = r.pairs_for_segment(seg)
        pair = r.sample_pair(seg, rng, avoid=pool)
        assert pair in pool
