"""Unit tests for the controller's topology view."""

import random

import pytest

from repro.net import fat_tree, linear
from repro.sdn import TopologyView


@pytest.fixture(scope="module")
def ft_view():
    return TopologyView(fat_tree(4))


class TestDistances:
    def test_same_edge_hosts(self, ft_view):
        assert ft_view.distance("h1", "h2") == 2

    def test_cross_pod_hosts(self, ft_view):
        assert ft_view.distance("h1", "h16") == 6

    def test_symmetric(self, ft_view):
        for a, b in [("h1", "h5"), ("h3", "h16")]:
            assert ft_view.distance(a, b) == ft_view.distance(b, a)


class TestEqualCostPaths:
    def test_cross_pod_ecmp_fanout(self, ft_view):
        # In a k=4 fat-tree, cross-pod pairs have 4 equal-cost paths
        # (2 agg choices x 2 core choices).
        paths = ft_view.equal_cost_paths("h1", "h16")
        assert len(paths) == 4
        assert all(len(p) == 7 for p in paths)

    def test_paths_are_cached(self, ft_view):
        assert ft_view.equal_cost_paths("h1", "h16") is ft_view.equal_cost_paths(
            "h1", "h16"
        )

    def test_pick_path_is_member(self, ft_view):
        rng = random.Random(0)
        for _ in range(10):
            p = ft_view.pick_path("h1", "h16", rng)
            assert p in ft_view.equal_cost_paths("h1", "h16")

    def test_shortest_path_endpoints(self, ft_view):
        p = ft_view.shortest_path("h1", "h9")
        assert p[0] == "h1" and p[-1] == "h9"


class TestLongPaths:
    def test_already_long_enough(self, ft_view):
        rng = random.Random(1)
        p = ft_view.paths_with_min_switches("h1", "h16", 3, rng)
        assert len(p) == 7  # shortest cross-pod path has 5 switches

    def test_stretch_for_more_switches(self):
        view = TopologyView(linear(3, hosts_per_switch=1))
        rng = random.Random(2)
        # h1-h2 shortest path has 2 switches; ask for 3.
        p = view.paths_with_min_switches("h1", "h2", 3, rng)
        switches = [n for n in p if n.startswith("s")]
        assert len(switches) >= 3
        assert p[0] == "h1" and p[-1] == "h2"
        # Interior must not pass through other hosts.
        assert all(not n.startswith("h") for n in p[1:-1])

    def test_impossible_stretch_raises(self):
        view = TopologyView(linear(1, hosts_per_switch=2))
        with pytest.raises(ValueError):
            view.paths_with_min_switches("h1", "h2", 5, random.Random(0))


class TestLinkPredicates:
    def test_link_on_shortest_path_true(self, ft_view):
        path = ft_view.shortest_path("h1", "h16")
        for u, v in zip(path, path[1:]):
            assert ft_view.link_on_shortest_path("h1", "h16", u, v)

    def test_link_on_shortest_path_false(self, ft_view):
        # The reverse direction of a forward-path link is not on the path.
        path = ft_view.shortest_path("h1", "h16")
        u, v = path[1], path[2]
        assert not ft_view.link_on_shortest_path("h1", "h16", v, u)

    def test_plausible_host_pairs_edge_downlink(self, ft_view):
        # Downlink from h1's edge switch to h1 carries only traffic *to* h1.
        pairs = ft_view.plausible_host_pairs("p0e0", "h1")
        assert pairs
        assert all(b == "h1" for _a, b in pairs)

    def test_plausible_host_pairs_uplink(self, ft_view):
        # Uplink h1 -> edge carries only traffic *from* h1.
        pairs = ft_view.plausible_host_pairs("h1", "p0e0")
        assert pairs
        assert all(a == "h1" for a, _b in pairs)

    def test_plausible_pairs_core_link_mixes_pods(self, ft_view):
        # An agg->core uplink carries sources from that pod to other pods.
        pairs = ft_view.plausible_host_pairs("p0a0", "c1")
        assert pairs
        srcs = {a for a, _ in pairs}
        dsts = {b for _, b in pairs}
        topo = ft_view.topo
        assert all(topo.graph.nodes[s]["pod"] == 0 for s in srcs)
        assert all(topo.graph.nodes[d]["pod"] != 0 for d in dsts)
