"""SDN controller runtime (Ryu-equivalent).

The :class:`Controller` connects to every switch in a :class:`Network`,
receives packet-ins, dispatches them to registered apps, and offers the
southbound operations apps need: flow-mod (with install latency), group-mod,
packet-out, and path-rule compilation helpers.

Apps subclass :class:`ControllerApp` and override ``on_packet_in``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..net.flowtable import FlowEntry, GroupEntry, Match, Output
from ..net.network import Network
from ..net.packet import Packet
from ..net.switch import Switch, SwitchDownError
from ..sim.engine import Event
from .discovery import FailureDetector, TopologyView

__all__ = ["Controller", "ControllerApp", "InstallLostError"]


class InstallLostError(RuntimeError):
    """Every retry of a flow-mod was lost before reaching the switch."""


class ControllerApp:
    """Base class for control applications."""

    name = "app"

    def attach(self, controller: "Controller") -> None:
        """Bind the app to its controller (called by register)."""
        self.controller = controller

    def on_packet_in(self, switch: Switch, packet: Packet, in_port: int) -> bool:
        """Handle a punted packet.  Return True if consumed (stops dispatch)."""
        return False

    def on_link_event(self, a: str, b: str, up: bool) -> None:
        """React to a link up/down event (view is already updated)."""

    def on_switch_event(self, name: str, up: bool) -> None:
        """React to a switch crash/reboot event (detected, not instant)."""


class Controller:
    """The network's single logical controller (assumed secure, Sec III-D).

    Failure detection and flow-mod reliability are both configurable:

    * ``detection_latency_s`` / ``heartbeat_period_s`` feed a
      :class:`~repro.sdn.discovery.FailureDetector` that delays link and
      switch state changes on their way to the control plane.  The zero
      default is synchronous and byte-identical to the old oracle wiring.
    * When a fault plane is attached (:attr:`faults`, set by
      ``FaultSchedule.attach``), every flow-mod's fate is decided at send
      time — it may be lost or delayed — and the controller drives lost
      mods again after ``ack_timeout_s`` with doubled backoff, up to
      ``max_install_retries`` retries.  Without a fault plane the install
      path is exactly the pre-fault code.
    """

    def __init__(
        self,
        network: Network,
        seed_stream: str = "controller",
        detection_latency_s: float = 0.0,
        heartbeat_period_s: Optional[float] = None,
        ack_timeout_s: float = 0.004,
        max_install_retries: int = 8,
    ):
        self.network = network
        self.sim = network.sim
        self.view = TopologyView(network.topo)
        self.apps: list[ControllerApp] = []
        self.rng = self.sim.rng(seed_stream)
        self.detector = FailureDetector(
            self.sim,
            latency_s=detection_latency_s,
            heartbeat_period_s=heartbeat_period_s,
        )
        self.ack_timeout_s = ack_timeout_s
        self.max_install_retries = max_install_retries
        #: fault plane consulted per flow-mod / packet-in; None = no faults
        self.faults = None
        self.packet_in_count = 0
        self.flow_mods_sent = 0
        self.flow_mods_lost = 0
        self.flow_mods_retried = 0
        self.packet_ins_blocked = 0
        for sw in network.switches():
            sw.connect_controller(self._handle_packet_in)
        network.link_listeners.append(self._handle_link_event)
        network.switch_listeners.append(self._handle_switch_event)

    # -- app management -----------------------------------------------------
    def register(self, app: ControllerApp) -> ControllerApp:
        """Attach and activate a control application."""
        app.attach(self)
        self.apps.append(app)
        return app

    def _handle_packet_in(self, switch: Switch, packet: Packet, in_port: int) -> None:
        if self.faults is not None and self.faults.packet_in_blocked(switch.name):
            # Control-channel partition: the punt never reaches the MC.
            self.packet_ins_blocked += 1
            self.network.trace.emit(
                self.sim.now, "ctrl.packet_in_blocked", switch.name,
                uid=packet.uid,
            )
            return
        self.packet_in_count += 1
        self.network.trace.emit(
            self.sim.now,
            "ctrl.packet_in",
            switch.name,
            uid=packet.uid,
            src_ip=str(packet.ip_src),
            dst_ip=str(packet.ip_dst),
        )
        for app in self.apps:
            if app.on_packet_in(switch, packet, in_port):
                return

    def _handle_link_event(self, a: str, b: str, up: bool) -> None:
        self.detector.deliver(self._on_link_detected, a, b, up)

    def _on_link_detected(self, a: str, b: str, up: bool) -> None:
        self.network.trace.emit(
            self.sim.now, "ctrl.link_event", f"{a}<->{b}", up=up
        )
        self.view.set_link_state(a, b, up)
        for app in self.apps:
            app.on_link_event(a, b, up)

    def _handle_switch_event(self, name: str, up: bool) -> None:
        self.detector.deliver(self._on_switch_detected, name, up)

    def _on_switch_detected(self, name: str, up: bool) -> None:
        self.network.trace.emit(
            self.sim.now, "ctrl.switch_event", name, up=up
        )
        for app in self.apps:
            app.on_switch_event(name, up)

    # -- southbound operations ---------------------------------------------
    def install(self, switch_name: str, entry: FlowEntry, delay: Optional[float] = None):
        """Send a flow-mod; returns the event that fires once active.

        With a fault plane attached the mod may be lost or delayed in the
        control channel; lost mods are re-driven with backoff (acked
        installs) and the returned event fails only when every retry is
        exhausted.
        """
        self.flow_mods_sent += 1
        sw = self.network.switch(switch_name)
        if self.faults is None:
            return sw.install_later(entry, delay=delay)
        return self._reliable_send(
            switch_name, lambda d: sw.install_later(entry, delay=d), delay
        )

    def install_batch(
        self,
        switch_name: str,
        entries: Sequence[FlowEntry],
        delay: Optional[float] = None,
    ):
        """Send one batched flow-mod carrying ``entries`` to a switch.

        The batch feeds the switch's classification index incrementally and
        costs a single lookup-cache invalidation; returns the event that
        fires once every rule in the batch is active.  Loss and retry apply
        to the batch as a unit (it is one control message).
        """
        self.flow_mods_sent += len(entries)
        sw = self.network.switch(switch_name)
        if self.faults is None:
            return sw.install_many_later(entries, delay=delay)
        return self._reliable_send(
            switch_name, lambda d: sw.install_many_later(entries, delay=d), delay
        )

    def install_group(self, switch_name: str, group: GroupEntry, delay: Optional[float] = None):
        """Send a group-mod; returns the install-complete event."""
        sw = self.network.switch(switch_name)
        if self.faults is not None:
            return self._reliable_send(
                switch_name, lambda d: self._group_mod(sw, group, d), delay
            )
        return self._group_mod(
            sw,
            group,
            self.network.params.flow_install_delay_s if delay is None else delay,
        )

    def _group_mod(self, sw: Switch, group: GroupEntry, delay: float):
        ev = self.sim.event()

        def _do():
            if not sw.alive:
                ev.fail(SwitchDownError(f"{sw.name} is down"))
                return
            sw.table.install_group(group)
            ev.succeed()

        self.sim.call_later(delay, _do)
        return ev

    def _reliable_send(self, switch_name: str, send, delay: Optional[float]):
        """Drive one control message through the fault plane with acks.

        ``send(effective_delay)`` must return an install-complete event.
        The message's fate — lost, delayed, or clean — is decided by the
        fault plane at each attempt; a lost or failed attempt is retried
        after ``ack_timeout_s`` (doubling each round) until it lands or
        ``max_install_retries`` retries are spent.  Returns an event that
        mirrors the final outcome.
        """
        base = self.network.params.flow_install_delay_s if delay is None else delay
        done = self.sim.event()

        def _proc():
            timeout = self.ack_timeout_s
            last_exc: Optional[BaseException] = None
            for attempt in range(self.max_install_retries + 1):
                if attempt > 0:
                    self.flow_mods_retried += 1
                lost, extra = self.faults.flowmod_fate(switch_name)
                if lost:
                    self.flow_mods_lost += 1
                    self.network.trace.emit(
                        self.sim.now, "ctrl.flowmod_lost", switch_name,
                        attempt=attempt,
                    )
                    yield self.sim.timeout(timeout)
                    timeout *= 2
                    continue
                try:
                    yield send(base + extra)
                except Exception as exc:
                    # The switch rejected or never acked (crashed chassis,
                    # table overflow): back off and re-drive like a loss.
                    last_exc = exc
                    yield self.sim.timeout(timeout)
                    timeout *= 2
                    continue
                done.succeed()
                return
            done.fail(
                last_exc
                if last_exc is not None
                else InstallLostError(
                    f"flow-mod to {switch_name} lost "
                    f"{self.max_install_retries + 1} times"
                )
            )

        self.sim.process(_proc())
        return done

    def remove_by_cookie(self, switch_name: str, cookie: int) -> Event:
        """Remove all rules and groups tagged with ``cookie`` (teardown).

        Returns an event firing once the removal has landed on the switch.
        Removals are idempotent, so under a lossy fault plane they are
        re-driven without a retry budget (capped exponential backoff) —
        repair sequences *must* observe old rules gone before re-using a
        cookie, or a delayed removal could eat the replacement rules.
        """
        sw = self.network.switch(switch_name)
        done = self.sim.event()

        def _do():
            sw.table.remove_by_cookie(cookie)
            sw.table.remove_groups_by_cookie(cookie)
            done.succeed()

        if self.faults is None:
            self.sim.call_later(self.network.params.flow_install_delay_s, _do)
            return done

        def _proc():
            timeout = self.ack_timeout_s
            while True:
                lost, extra = self.faults.flowmod_fate(switch_name)
                if lost:
                    self.flow_mods_lost += 1
                    yield self.sim.timeout(timeout)
                    timeout = min(timeout * 2, 64 * self.ack_timeout_s)
                    continue
                yield self.sim.timeout(
                    self.network.params.flow_install_delay_s + extra
                )
                _do()
                return

        self.sim.process(_proc())
        return done

    def packet_out(self, switch_name: str, packet: Packet, out_port: int) -> None:
        """Re-inject a punted packet at a switch."""
        if self.faults is not None and self.faults.packet_in_blocked(switch_name):
            # Partitioned control channel blocks the packet-out too.
            self.packet_ins_blocked += 1
            return
        sw = self.network.switch(switch_name)
        self.sim.call_later(
            self.network.params.packet_out_delay_s,
            lambda: sw.transmit(packet, out_port),
        )

    # -- introspection / verification -----------------------------------------
    def iter_rules(self):
        """Yield ``(switch_name, FlowEntry)`` for every installed rule."""
        for sw in self.network.switches():
            for entry in sw.table.iter_entries():
                yield sw.name, entry

    def iter_groups(self):
        """Yield ``(switch_name, GroupEntry)`` for every installed group."""
        for sw in self.network.switches():
            for group in sw.table.groups.values():
                yield sw.name, group

    def verify(self):
        """Statically verify the installed data plane.

        If a Mimic Controller app is registered, its channel plans unlock
        the MIC intent checks too.  Returns a
        :class:`repro.analysis.VerificationReport`.
        """
        from ..analysis import verify_network

        mic = next((app for app in self.apps if app.name == "mic"), None)
        return verify_network(self.network, mic=mic)

    # -- helpers --------------------------------------------------------------
    def ports_along(self, path: Sequence[str]) -> list[tuple[str, int]]:
        """(switch, out_port) pairs for the switch hops of a node path."""
        hops: list[tuple[str, int]] = []
        for i, node in enumerate(path[:-1]):
            if self.network.topo.kind(node) != "switch":
                continue
            hops.append((node, self.network.port(node, path[i + 1])))
        return hops

    def install_unicast_path(
        self,
        path: Sequence[str],
        match: Match,
        priority: int = 10,
        cookie: int = 0,
    ) -> list:
        """Install a plain forwarding rule on every switch along ``path``.

        Returns the list of install-complete events (installs proceed in
        parallel, as a real controller would batch them).
        """
        events = []
        for sw_name, out_port in self.ports_along(path):
            entry = FlowEntry(match, [Output(out_port)], priority=priority, cookie=cookie)
            events.append(self.install(sw_name, entry))
        return events
