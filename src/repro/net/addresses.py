"""Network address value types.

Lightweight, hashable wrappers over integers for IPv4 and MAC addresses with
the usual dotted/colon text forms.  MIC rewrites these fields at Mimic Nodes,
so the whole system passes them around constantly — they are immutable and
cheap to compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterable, Union

__all__ = ["IPv4Addr", "MacAddr", "ip", "mac", "Subnet"]


@total_ordering
@dataclass(frozen=True, slots=True)
class IPv4Addr:
    """An IPv4 address stored as a 32-bit unsigned integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise ValueError(f"IPv4 value out of range: {self.value!r}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Addr":
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"malformed IPv4 address: {text!r}")
        value = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 255}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}"

    def __repr__(self) -> str:
        return f"IPv4Addr({str(self)!r})"

    def __int__(self) -> int:
        return self.value

    def __lt__(self, other: "IPv4Addr") -> bool:
        return self.value < other.value

    def __add__(self, offset: int) -> "IPv4Addr":
        return IPv4Addr(self.value + offset)


@total_ordering
@dataclass(frozen=True, slots=True)
class MacAddr:
    """A MAC address stored as a 48-bit unsigned integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFFFFFF:
            raise ValueError(f"MAC value out of range: {self.value!r}")

    @classmethod
    def parse(cls, text: str) -> "MacAddr":
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"malformed MAC address: {text!r}")
        value = 0
        for part in parts:
            byte = int(part, 16)
            if not 0 <= byte <= 255:
                raise ValueError(f"byte out of range in {text!r}")
            value = (value << 8) | byte
        return cls(value)

    def __str__(self) -> str:
        v = self.value
        return ":".join(f"{(v >> shift) & 255:02x}" for shift in range(40, -8, -8))

    def __repr__(self) -> str:
        return f"MacAddr({str(self)!r})"

    def __int__(self) -> int:
        return self.value

    def __lt__(self, other: "MacAddr") -> bool:
        return self.value < other.value


def ip(spec: Union[str, int, IPv4Addr]) -> IPv4Addr:
    """Coerce a string, int or IPv4Addr to :class:`IPv4Addr`."""
    if isinstance(spec, IPv4Addr):
        return spec
    if isinstance(spec, int):
        return IPv4Addr(spec)
    return IPv4Addr.parse(spec)


def mac(spec: Union[str, int, MacAddr]) -> MacAddr:
    """Coerce a string, int or MacAddr to :class:`MacAddr`."""
    if isinstance(spec, MacAddr):
        return spec
    if isinstance(spec, int):
        return MacAddr(spec)
    return MacAddr.parse(spec)


@dataclass(frozen=True, slots=True)
class Subnet:
    """A CIDR block, e.g. ``Subnet.parse("10.0.0.0/24")``."""

    network: IPv4Addr
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {self.prefix_len}")
        if int(self.network) & ~self.mask:
            raise ValueError(
                f"network {self.network} has host bits set for /{self.prefix_len}"
            )

    @classmethod
    def parse(cls, text: str) -> "Subnet":
        net_text, _, len_text = text.partition("/")
        if not len_text:
            raise ValueError(f"missing prefix length in {text!r}")
        return cls(ip(net_text), int(len_text))

    @property
    def mask(self) -> int:
        """The netmask as a 32-bit integer."""
        return (0xFFFFFFFF << (32 - self.prefix_len)) & 0xFFFFFFFF

    @property
    def size(self) -> int:
        """Number of addresses in the block."""
        return 1 << (32 - self.prefix_len)

    def __contains__(self, addr: Union[IPv4Addr, str, int]) -> bool:
        return (int(ip(addr)) & self.mask) == int(self.network)

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix_len}"

    def hosts(self) -> Iterable[IPv4Addr]:
        """All addresses in the block except network and broadcast."""
        base = int(self.network)
        if self.prefix_len >= 31:
            yield from (IPv4Addr(base + i) for i in range(self.size))
            return
        for offset in range(1, self.size - 1):
            yield IPv4Addr(base + offset)

    def nth(self, n: int) -> IPv4Addr:
        """The n-th address of the block (0 = network address)."""
        if not 0 <= n < self.size:
            raise ValueError(f"host index {n} out of range for {self}")
        return IPv4Addr(int(self.network) + n)
