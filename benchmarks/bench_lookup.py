"""Classifier microbenchmark: indexed lookup vs the reference linear scan.

Builds a MIC-shaped rule population (exact-match m-flow rewrite rules at
MIC priority, decoy drops above them, a band of L3 ⟨src, dst⟩ pair rules
below — the mix a production edge switch carries) and measures per-lookup
cost three ways:

* ``linear``   — :meth:`FlowTable.lookup_linear`, the reference classifier;
* ``indexed``  — the tuple-space tiers with the lookup cache disabled;
* ``cached``   — the full two-tier pipeline (tiers + lookup cache).

The acceptance bar for the indexed pipeline is a >=10x median speedup over
the reference at 1k installed rules.  Run directly
(``python benchmarks/bench_lookup.py``) or through pytest; both write
``benchmarks/results/lookup_microbench.json``.
"""

import json
import pathlib
import statistics
import time

from repro.net import FlowEntry, FlowTable, Match, Output, Packet, SetField, ip, mac

RESULTS = pathlib.Path(__file__).parent / "results"

MIC_PRIORITY = 50
DECOY_PRIORITY = 60
L3_PRIORITY = 10


def build_rules(n_rules: int):
    """A deterministic MIC-like rule population of ``n_rules`` entries.

    Roughly 60% m-flow exact-match rewrite rules, 10% decoy drops, 30%
    L3 pair rules; returns ``(entries, packets)`` where every packet hits
    some rule (uniformly spread over the population).
    """
    entries: list[FlowEntry] = []
    packets: list[Packet] = []
    i = 0
    while len(entries) < n_rules:
        src, dst = ip(0x0A000000 + i), ip(0x0A800000 + i)
        sport, dport = 1024 + (i % 50000), 2048 + (i % 50000)
        kind = i % 10
        if kind < 6:  # m-flow segment rule: exact 5-field match + rewrite
            match = Match(ip_src=src, ip_dst=dst, sport=sport, dport=dport,
                          mpls=(i % 97) + 1)
            actions = [SetField("ip_src", ip(0x0B000000 + i)),
                       SetField("ip_dst", ip(0x0B800000 + i)),
                       Output(1 + i % 4)]
            entries.append(FlowEntry(match, actions, priority=MIC_PRIORITY))
            pkt_mpls = (i % 97) + 1
        elif kind < 7:  # decoy drop above the m-flow band
            match = Match(ip_src=src, ip_dst=dst, sport=sport, dport=dport,
                          mpls=Match.NO_MPLS)
            entries.append(FlowEntry(match, [], priority=DECOY_PRIORITY))
            pkt_mpls = None
        else:  # plain L3 pair rule
            match = Match(ip_src=src, ip_dst=dst)
            entries.append(FlowEntry(match, [Output(1 + i % 4)],
                                     priority=L3_PRIORITY))
            pkt_mpls = None
        packets.append(Packet(
            eth_src=mac(1), eth_dst=mac(2), ip_src=src, ip_dst=dst,
            sport=sport, dport=dport, mpls=pkt_mpls, payload_size=512,
        ))
        i += 1
    return entries, packets


def _time_per_lookup(fn, packets, rounds: int) -> float:
    """Median over ``rounds`` of the mean per-lookup wall time of ``fn``."""
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        for pkt in packets:
            fn(pkt, 1)
        samples.append((time.perf_counter() - t0) / len(packets))
    return statistics.median(samples)


def run(n_rules: int = 1000, rounds: int = 7) -> dict:
    """Measure the three classifier paths over ``n_rules`` installed rules."""
    entries, packets = build_rules(n_rules)

    plain = FlowTable()
    plain.install_many(entries)
    # Fresh entry objects for the no-cache table: entries belong to one table.
    entries2, _ = build_rules(n_rules)
    uncached = FlowTable(cache_size=0)
    uncached.install_many(entries2)

    # Sanity before timing: all three paths classify identically here.
    for pkt in packets[:: max(1, n_rules // 50)]:
        a = plain.lookup(pkt, 1)
        b = plain.lookup_linear(pkt, 1)
        assert (a is None) == (b is None) and (
            a is None or a.match.key() == b.match.key()
        )

    linear_s = _time_per_lookup(plain.lookup_linear, packets, rounds)
    indexed_s = _time_per_lookup(uncached.lookup, packets, rounds)
    plain.lookup(packets[0], 1)  # warm the cache structure
    cached_s = _time_per_lookup(plain.lookup, packets, rounds)

    return {
        "n_rules": n_rules,
        "n_lookups_per_round": len(packets),
        "rounds": rounds,
        "linear_s_per_lookup": linear_s,
        "indexed_s_per_lookup": indexed_s,
        "cached_s_per_lookup": cached_s,
        "speedup_indexed": linear_s / indexed_s,
        "speedup_cached": linear_s / cached_s,
    }


def _save(result: dict) -> pathlib.Path:
    RESULTS.mkdir(exist_ok=True)
    out = RESULTS / "lookup_microbench.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    return out


def test_indexed_lookup_at_least_10x_at_1k_rules():
    result = run(n_rules=1000)
    _save(result)
    print(
        f"\nlookup @1k rules: linear {result['linear_s_per_lookup'] * 1e6:.1f}us"
        f"  indexed {result['indexed_s_per_lookup'] * 1e6:.2f}us"
        f" ({result['speedup_indexed']:.0f}x)"
        f"  cached {result['cached_s_per_lookup'] * 1e6:.2f}us"
        f" ({result['speedup_cached']:.0f}x)"
    )
    assert result["speedup_indexed"] >= 10.0
    assert result["speedup_cached"] >= 10.0


if __name__ == "__main__":
    res = run()
    path = _save(res)
    print(json.dumps(res, indent=2))
    print(f"saved -> {path}")
