"""SDN control plane: controller runtime, topology view, baseline routing.

This package replaces the paper's Ryu controller platform.
"""

from .controller import Controller, ControllerApp
from .discovery import TopologyView
from .l3app import L3ShortestPathApp

__all__ = ["Controller", "ControllerApp", "L3ShortestPathApp", "TopologyView"]
