"""Symbolic packet headers and rewrite-aware action execution.

The verifier reasons about *classes* of packets instead of injecting real
ones (the VeriFlow idea applied to MIC's match lattice).  A
:class:`SymbolicHeader` assigns each matchable field either a concrete value
or :data:`ANY`; the MPLS field has the extra concrete state ``None`` ("no
shim"), mirroring :class:`repro.net.packet.Packet`.

Matching comes in two strengths:

* :func:`could_match` — some concrete packet in the class matches the rule,
* :func:`must_match` — every concrete packet in the class matches the rule.

Traversal refines a header through the rules it follows
(:func:`refine`) and pushes it through action lists
(:func:`apply_actions`) without touching any switch state or counters —
the data plane is never perturbed by verification.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Optional, Sequence

from ..net.flowtable import (
    CONTROLLER_PORT,
    Action,
    Drop,
    FlowEntry,
    Group,
    GroupEntry,
    Match,
    Output,
    PopMpls,
    PushMpls,
    SetField,
    ToController,
)

__all__ = [
    "ANY",
    "SymbolicHeader",
    "could_match",
    "must_match",
    "refine",
    "apply_actions",
    "SymbolicResult",
    "winner_entry",
    "candidate_entries",
]


class _Any:
    """Singleton wildcard marker for one symbolic field."""

    _instance: Optional["_Any"] = None

    def __new__(cls) -> "_Any":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"


#: "this field may hold any value" (including, for mpls, "no shim")
ANY = _Any()

#: header fields a Match can constrain, minus the in_port metadata field
_HEADER_FIELDS = (
    "eth_src",
    "eth_dst",
    "ip_src",
    "ip_dst",
    "proto",
    "sport",
    "dport",
    "mpls",
)


@dataclass(frozen=True)
class SymbolicHeader:
    """A set of packet headers: concrete values and :data:`ANY` wildcards.

    ``in_port`` travels with the header because OpenFlow matching treats the
    ingress port as just another match field; emissions replace it with the
    peer's concrete port.
    """

    eth_src: Any = ANY
    eth_dst: Any = ANY
    ip_src: Any = ANY
    ip_dst: Any = ANY
    proto: Any = ANY
    sport: Any = ANY
    dport: Any = ANY
    mpls: Any = ANY  # ANY | None (no shim) | int label
    in_port: Any = ANY

    def key(self) -> tuple:
        """Hashable identity for visited-state tracking."""
        return tuple(getattr(self, f) for f in _HEADER_FIELDS) + (self.in_port,)

    def describe(self) -> str:
        """Compact rendering listing only the concrete fields."""
        parts = [
            f"{f}={getattr(self, f)}"
            for f in _HEADER_FIELDS + ("in_port",)
            if getattr(self, f) is not ANY
        ]
        return "Hdr(" + ", ".join(parts) + ")" if parts else "Hdr(*)"

    __repr__ = describe


def _field_could(constraint: Any, value: Any, is_mpls: bool) -> bool:
    if constraint is None:  # wildcard match field
        return True
    if value is ANY:
        return True
    if is_mpls and constraint == Match.NO_MPLS:
        return value is None
    return value == constraint


def _field_must(constraint: Any, value: Any, is_mpls: bool) -> bool:
    if constraint is None:
        return True
    if value is ANY:
        return False
    if is_mpls and constraint == Match.NO_MPLS:
        return value is None
    return value == constraint


def could_match(match: Match, hdr: SymbolicHeader) -> bool:
    """True iff some concrete packet in ``hdr`` matches ``match``."""
    if not _field_could(match.in_port, hdr.in_port, False):
        return False
    for f in _HEADER_FIELDS:
        if not _field_could(getattr(match, f), getattr(hdr, f), f == "mpls"):
            return False
    return True


def must_match(match: Match, hdr: SymbolicHeader) -> bool:
    """True iff every concrete packet in ``hdr`` matches ``match``."""
    if not _field_must(match.in_port, hdr.in_port, False):
        return False
    for f in _HEADER_FIELDS:
        if not _field_must(getattr(match, f), getattr(hdr, f), f == "mpls"):
            return False
    return True


def refine(match: Match, hdr: SymbolicHeader) -> SymbolicHeader:
    """Narrow ``hdr`` to the packets that also satisfy ``match``.

    Caller must have established :func:`could_match` first; concrete header
    fields are left alone, wildcards take the match's constraint.
    """
    updates: dict[str, Any] = {}
    for f in _HEADER_FIELDS:
        constraint = getattr(match, f)
        if constraint is None or getattr(hdr, f) is not ANY:
            continue
        if f == "mpls" and constraint == Match.NO_MPLS:
            updates[f] = None
        else:
            updates[f] = constraint
    if match.in_port is not None and hdr.in_port is ANY:
        updates["in_port"] = match.in_port
    return replace(hdr, **updates) if updates else hdr


def header_from_match(match: Match) -> SymbolicHeader:
    """The symbolic header class described by a rule's match."""
    return refine(match, SymbolicHeader())


@dataclass
class SymbolicResult:
    """Outcome of pushing a header through one action list."""

    emissions: list[tuple[int, SymbolicHeader]]
    punted: bool = False
    dropped: bool = False
    missing_group: Optional[int] = None


def apply_actions(
    actions: Sequence[Action],
    hdr: SymbolicHeader,
    groups: dict[int, GroupEntry],
) -> SymbolicResult:
    """Symbolically execute ``actions`` on ``hdr``.

    Mirrors :meth:`repro.net.flowtable.FlowTable._run_actions` — sequential
    ``set-field`` rewrites, per-``output`` snapshots, type-*all* group
    expansion on a copy per bucket — but over header classes and with no
    side effects on the table.
    """
    result = SymbolicResult(emissions=[])
    current = hdr
    saw_output = False
    for action in actions:
        if isinstance(action, SetField):
            if action.field == "ttl":
                continue  # not matchable; irrelevant to classification
            current = replace(current, **{action.field: action.value})
        elif isinstance(action, PushMpls):
            current = replace(current, mpls=action.label)
        elif isinstance(action, PopMpls):
            current = replace(current, mpls=None)
        elif isinstance(action, Output):
            if action.port == CONTROLLER_PORT:
                result.punted = True
            else:
                result.emissions.append((action.port, current))
            saw_output = True
        elif isinstance(action, Group):
            group = groups.get(action.group_id)
            if group is None:
                result.missing_group = action.group_id
            else:
                for bucket in group.buckets:
                    sub = apply_actions(bucket, current, groups)
                    result.emissions.extend(sub.emissions)
                    result.punted = result.punted or sub.punted
                    if sub.missing_group is not None:
                        result.missing_group = sub.missing_group
            saw_output = True
        elif isinstance(action, ToController):
            result.punted = True
        elif isinstance(action, Drop):
            result.dropped = True
            break
    if not saw_output and not result.punted and not result.dropped:
        # An action list with no output at all silently discards the packet.
        result.dropped = True
    return result


def winner_entry(
    entries: Iterable[FlowEntry], hdr: SymbolicHeader
) -> Optional[FlowEntry]:
    """The entry a fully-concrete header would hit, or None on table miss."""
    for entry in entries:
        if could_match(entry.match, hdr):
            return entry
    return None


def candidate_entries(
    entries: Iterable[FlowEntry], hdr: SymbolicHeader
) -> list[FlowEntry]:
    """Entries some packet of ``hdr`` could hit, in priority order.

    The scan stops after the first entry that *must* match: everything below
    it is unreachable for this header class.
    """
    out: list[FlowEntry] = []
    for entry in entries:
        if could_match(entry.match, hdr):
            out.append(entry)
            if must_match(entry.match, hdr):
                break
    return out
