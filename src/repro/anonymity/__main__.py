"""``python -m repro.anonymity``: print the strategy contract table.

The output is the exact markdown embedded in docs/anonymity.md between
the ``strategy-table`` markers; a doc-diff test keeps the two in sync.
"""

import sys

from .base import format_strategy_table


def main(argv=None) -> int:
    print(format_strategy_table())
    return 0


if __name__ == "__main__":
    sys.exit(main())
