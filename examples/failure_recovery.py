#!/usr/bin/env python3
"""Fabric fault tolerance: a mimic channel survives a link failure.

The MC has the global view (Sec IV-B), so when a link dies mid-transfer it
re-plans the affected m-flow over the surviving fabric — pinning the entry
and delivery addresses so neither endpoint's TCP connection notices.  The
blackout window is covered by ordinary TCP retransmission.

Run:  python examples/failure_recovery.py
"""

from repro.core import MicEndpoint, MicServer, MimicController
from repro.net import Network, fat_tree
from repro.sdn import Controller, L3ShortestPathApp

PAYLOAD = bytes(range(256)) * 512  # 128 KiB


def main() -> None:
    net = Network(fat_tree(4), seed=5)
    ctrl = Controller(net)
    mic = ctrl.register(MimicController())
    ctrl.register(L3ShortestPathApp())
    server = MicServer(net.host("h16"), 80)
    alice = MicEndpoint(net.host("h1"), mic)
    log = {}

    def client():
        stream = yield from alice.connect("h16", service_port=80, n_mns=3)
        plan = next(iter(mic.channels.values())).flows[0]
        log["old_walk"] = list(plan.walk)
        stream.send(PAYLOAD[: len(PAYLOAD) // 2])
        yield net.sim.timeout(0.05)

        # Disaster: an interior link of the channel's walk goes dark.
        victim = (plan.walk[2], plan.walk[3])
        log["failed_link"] = victim
        log["failed_at"] = net.sim.now
        net.set_link_state(*victim, False)

        yield net.sim.timeout(0.05)
        stream.send(PAYLOAD[len(PAYLOAD) // 2 :])

    def srv():
        stream = yield server.accept()
        data = yield from stream.recv_exactly(len(PAYLOAD))
        log["received_at"] = net.sim.now
        log["intact"] = data == PAYLOAD

    net.sim.process(client())
    net.sim.process(srv())
    net.run(until=30.0)

    new_plan = next(iter(mic.channels.values())).flows[0]
    repair = net.trace.by_category("mic.repair")
    print(f"original walk : {' -> '.join(log['old_walk'])}")
    print(f"link failed   : {log['failed_link'][0]} <-> {log['failed_link'][1]} "
          f"at t={log['failed_at'] * 1e3:.1f} ms")
    print(f"repaired walk : {' -> '.join(new_plan.walk)}")
    print(f"repair events : {len(repair)} "
          f"(flow re-planned by the MC, entry/delivery pinned)")
    print(f"transfer done : t={log['received_at'] * 1e3:.1f} ms, "
          f"payload intact = {log['intact']}")
    dead = set(log["failed_link"])
    assert log["intact"]
    assert not any(
        set(edge) == dead for edge in zip(new_plan.walk, new_plan.walk[1:])
    )
    print("\nthe channel rerouted transparently; TCP never broke.")


if __name__ == "__main__":
    main()
