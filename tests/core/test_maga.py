"""Unit and property tests for the MAGA reversible hash family."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.maga import HashParams, ReversibleHash


def make_paper_f(seed=0):
    """The paper's 3-variable f(x, y, z) over 32-bit variables."""
    return ReversibleHash.random(random.Random(seed), widths=(32, 32, 32), shift=8)


class TestConstruction:
    def test_value_bits(self):
        h = make_paper_f()
        assert h.value_bits == 24
        assert h.n_values == 1 << 24

    def test_param_count_checked(self):
        with pytest.raises(ValueError):
            ReversibleHash(widths=(8, 8), params=(), solve_xor=0, shift=2)

    def test_shift_range_checked(self):
        with pytest.raises(ValueError):
            ReversibleHash(widths=(8,), params=(), solve_xor=0, shift=8)
        with pytest.raises(ValueError):
            ReversibleHash(widths=(8,), params=(), solve_xor=0, shift=0)

    def test_min_width_checked(self):
        with pytest.raises(ValueError):
            ReversibleHash(widths=(8, 1), params=(HashParams(0, 1, 0, 1),),
                           solve_xor=0, shift=1)

    def test_wrong_arity_rejected(self):
        h = make_paper_f()
        with pytest.raises(ValueError):
            h.value(1, 2)
        with pytest.raises(ValueError):
            h.solve(0, 1)

    def test_target_out_of_range_rejected(self):
        h = make_paper_f()
        with pytest.raises(ValueError):
            h.solve(h.n_values, 1, 2)
        with pytest.raises(ValueError):
            h.solve(-1, 1, 2)


class TestInverse:
    """The paper's core claim: f(x, y, f_z^{-1}(V, x, y)) = V."""

    def test_solve_roundtrip_smoke(self):
        h = make_paper_f()
        z = h.solve(12345, 0xDEADBEEF, 0xCAFEBABE)
        assert h.value(0xDEADBEEF, 0xCAFEBABE, z) == 12345

    @settings(max_examples=300, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        target=st.integers(0, (1 << 24) - 1),
        x=st.integers(0, (1 << 32) - 1),
        y=st.integers(0, (1 << 32) - 1),
    )
    def test_solve_roundtrip_property(self, seed, target, x, y):
        h = make_paper_f(seed)
        z = h.solve(target, x, y)
        assert 0 <= z < (1 << 32)
        assert h.value(x, y, z) == target

    @settings(max_examples=200, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        target=st.integers(0, (1 << 10) - 1),
        a=st.integers(0, (1 << 32) - 1),
        b=st.integers(0, (1 << 32) - 1),
        g=st.integers(0, (1 << 16) - 1),
    )
    def test_four_variable_F_roundtrip(self, seed, target, a, b, g):
        """The paper's F(α, β, γ, δ) with heterogeneous widths."""
        h = ReversibleHash.random(
            random.Random(seed), widths=(32, 32, 16, 16), shift=6
        )
        assert h.value_bits == 10
        d = h.solve(target, a, b, g)
        assert h.value(a, b, g, d) == target

    @settings(max_examples=200, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        target=st.integers(0, (1 << 6) - 1),
        x1=st.integers(0, 255),
    )
    def test_two_variable_h_roundtrip(self, seed, target, x1):
        """The split hash h(x1, x2) that realizes the paper's g(x)."""
        h = ReversibleHash.random(random.Random(seed), widths=(8, 8), shift=2)
        x2 = h.solve(target, x1)
        assert h.value(x1, x2) == target

    def test_single_variable_hash(self):
        h = ReversibleHash(widths=(16,), params=(), solve_xor=0xABCD, shift=4)
        for target in (0, 1, 500, (1 << 12) - 1):
            z = h.solve(target)
            assert h.value(z) == target


class TestDisjointness:
    """Tuples solved for different targets can never collide — the property
    the collision-avoidance mechanism rests on (paper Fig 4)."""

    @settings(max_examples=200, deadline=None)
    @given(
        seed=st.integers(0, 200),
        t1=st.integers(0, (1 << 24) - 1),
        t2=st.integers(0, (1 << 24) - 1),
        x1=st.integers(0, (1 << 32) - 1),
        y1=st.integers(0, (1 << 32) - 1),
        x2=st.integers(0, (1 << 32) - 1),
        y2=st.integers(0, (1 << 32) - 1),
    )
    def test_different_targets_different_tuples(self, seed, t1, t2, x1, y1, x2, y2):
        if t1 == t2:
            return
        h = make_paper_f(seed)
        tup1 = (x1, y1, h.solve(t1, x1, y1))
        tup2 = (x2, y2, h.solve(t2, x2, y2))
        assert tup1 != tup2

    def test_value_partitions_tuple_space(self):
        """Exhaustive check on a small instance: classes are disjoint and
        cover everything."""
        h = ReversibleHash.random(random.Random(7), widths=(4, 4), shift=1)
        buckets = {}
        for x in range(16):
            for z in range(16):
                buckets.setdefault(h.value(x, z), set()).add((x, z))
        assert sum(len(b) for b in buckets.values()) == 256
        all_tuples = set().union(*buckets.values())
        assert len(all_tuples) == 256  # pairwise disjoint

    def test_solutions_per_class_uniform(self):
        """For each (x, target) there are exactly 2^shift solutions z, i.e.
        classes are balanced (many draws available per m-flow)."""
        h = ReversibleHash.random(random.Random(3), widths=(6, 6), shift=2)
        x = 13
        counts = {}
        for z in range(64):
            counts[h.value(x, z)] = counts.get(h.value(x, z), 0) + 1
        assert all(c == 4 for c in counts.values())


class TestIndependence:
    def test_different_seeds_give_different_functions(self):
        h1, h2 = make_paper_f(1), make_paper_f(2)
        # Same tuple should (overwhelmingly) hash differently.
        diffs = sum(
            h1.value(x, x * 7, x * 13) != h2.value(x, x * 7, x * 13)
            for x in range(100)
        )
        assert diffs > 90

    def test_same_seed_reproducible(self):
        assert make_paper_f(5) == make_paper_f(5)
