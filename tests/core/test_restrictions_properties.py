"""Property tests: address plausibility over randomized topologies."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import AddressRestrictions
from repro.net import fat_tree, leaf_spine, linear
from repro.sdn import TopologyView


@st.composite
def random_topology(draw):
    kind = draw(st.sampled_from(["fat_tree", "leaf_spine", "linear"]))
    if kind == "fat_tree":
        return fat_tree(4)
    if kind == "leaf_spine":
        spines = draw(st.integers(1, 3))
        leaves = draw(st.integers(2, 4))
        hosts = draw(st.integers(1, 3))
        return leaf_spine(spines, leaves, hosts)
    return linear(draw(st.integers(2, 5)), hosts_per_switch=draw(st.integers(1, 2)))


@settings(max_examples=40, deadline=None)
@given(topo=random_topology(), seed=st.integers(0, 1000))
def test_plausible_pairs_are_sound(topo, seed):
    """Every pair reported plausible on u→v really has a shortest routing
    path through u→v (checked against the distance oracle)."""
    view = TopologyView(topo)
    restrictions = AddressRestrictions(view)
    rng = random.Random(seed)
    edges = list(topo.graph.edges)
    rng.shuffle(edges)
    for u, v in edges[:6]:
        for a, b in restrictions.plausible_pairs(u, v)[:20]:
            assert view.dist[a][u] + 1 + view.dist[v][b] == view.dist[a][b]


@settings(max_examples=40, deadline=None)
@given(topo=random_topology())
def test_every_link_has_plausible_traffic(topo):
    """No dead links: every directed link carries some plausible pair, so
    the MC can always draw an address for any segment it routes through."""
    view = TopologyView(topo)
    restrictions = AddressRestrictions(view)
    for u, v in topo.graph.edges:
        assert restrictions.plausible_pairs(u, v), f"no pairs on {u}->{v}"
        assert restrictions.plausible_pairs(v, u), f"no pairs on {v}->{u}"


@settings(max_examples=40, deadline=None)
@given(topo=random_topology(), seed=st.integers(0, 1000))
def test_samples_are_real_host_pairs(topo, seed):
    view = TopologyView(topo)
    restrictions = AddressRestrictions(view)
    rng = random.Random(seed)
    hosts = set(topo.hosts())
    for u, v in list(topo.graph.edges)[:5]:
        a, b = restrictions.sample_pair([u, v], rng)
        assert a in hosts and b in hosts and a != b


@settings(max_examples=30, deadline=None)
@given(topo=random_topology(), seed=st.integers(0, 1000))
def test_shortest_path_segments_always_have_pairs(topo, seed):
    """The intersection along any whole shortest path is non-empty (the
    endpoints themselves are always plausible)."""
    view = TopologyView(topo)
    restrictions = AddressRestrictions(view)
    rng = random.Random(seed)
    hosts = topo.hosts()
    if len(hosts) < 2:
        return
    a, b = rng.sample(hosts, 2)
    path = view.shortest_path(a, b)
    pairs = restrictions.pairs_for_segment(path)
    assert (a, b) in pairs
