"""The strategy × attack tournament (anonymity-vs-overhead frontier).

One tournament runs every registered anonymity strategy
(:mod:`repro.anonymity`) through the *same* seeded scenario — cross-pod
UDP echo channels on a fat-tree, distinct per-channel traffic shapes, one
mid-walk link flap for churn — then fields every registered attack
(:mod:`repro.attacks.suite`) against each finished run.  The output is
one deterministic frontier document: per strategy, each attack's measured
accuracy next to the strategy's overhead (rule footprint, setup latency,
rotation install traffic) and availability, so the anonymity/overhead
trade-off reads off a single JSON file.

Determinism: every scenario resets the process-global ID counters and
re-derives all randomness from named, seeded RNG streams, so the same
seed yields a byte-identical frontier — rerun it and ``diff`` agrees.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from typing import Optional, Sequence

from ..anonymity import STRATEGIES
from ..core.client import MicDatagramServer
from ..core.deployment import deploy_mic
from ..faults.schedule import FaultSchedule
from ..faults.scorecard import ChannelProbeStats, build_scorecard
from ..net.topology import fat_tree
from .base import ATTACKS, AttackContext, ChannelTruth, get_attack

__all__ = [
    "frontier_json",
    "run_scenario",
    "run_tournament",
    "score_strategy",
]

#: how long the per-channel probe pumps run (simulated seconds)
PUMP_HORIZON_S = 4.0
#: distinct per-channel traffic shapes: (period_s, payload_bytes); the
#: rate differences are the watermark the rate-matching attacker exploits
CHANNEL_SHAPES = ((0.04, 100), (0.09, 160), (0.15, 220))


def _reset_id_counters() -> None:
    """Pin the process-global ID counters so a rerun in the same process
    draws identical channel/cookie/group/tag IDs — the frontier must be
    byte-identical across reruns at a fixed seed."""
    from ..core import channel as channel_mod
    from ..core import controller as controller_mod
    from ..net import flowtable, packet

    packet._uid_counter = itertools.count(1)
    packet._tag_counter = itertools.count(1)
    flowtable._entry_counter = itertools.count(1)
    channel_mod._channel_ids = itertools.count(1)
    controller_mod._group_ids = itertools.count(1)
    controller_mod._cookie_ids = itertools.count(0x4D49_0000)


def run_scenario(
    strategy: str = "mic",
    seed: int = 0,
    k: int = 4,
    n_mns: int = 3,
    decoys: int = 2,
    mn_bits: int = 16,
) -> tuple[AttackContext, dict]:
    """Run one tournament scenario; returns ``(context, stats)``.

    ``context`` is the adversary-facing view (taps, journeys, channel
    ground truth); ``stats`` the defender-side overhead/availability
    numbers the frontier pairs with the attack accuracies.
    """
    _reset_id_counters()
    dep = deploy_mic(
        fat_tree(k),
        seed=seed,
        observe=True,
        journey=True,
        mic_kwargs={"strategy": strategy, "mn_bits": mn_bits},
    )
    sim = dep.sim
    n_hosts = k * k * k // 4
    pairs = [
        (f"h{i + 1}", f"h{n_hosts - i}", 7001 + i)
        for i in range(len(CHANNEL_SHAPES))
    ]

    # -- establish the channels (setup latency measured per channel) -------
    sockets: dict[int, object] = {}
    setup_s: dict[int, float] = {}

    def serve(server):
        while True:
            dg = yield server.recv()
            server.reply(dg, dg.data)

    def establish(idx: int, a: str, b: str, port: int):
        t0 = sim.now
        sock = yield from dep.endpoint(a).connect_datagram(
            b, service_port=port, n_mns=n_mns, decoys=decoys
        )
        sockets[idx] = sock
        setup_s[idx] = sim.now - t0

    for idx, (a, b, port) in enumerate(pairs):
        server = MicDatagramServer(dep.net.host(b), port)
        sim.process(serve(server), name=f"tourney.server{idx}")
        sim.process(establish(idx, a, b, port), name=f"tourney.establish{idx}")
    dep.run_for(5.0)
    if len(sockets) != len(pairs):
        raise RuntimeError(
            f"only {len(sockets)}/{len(pairs)} channels established"
        )

    # -- ground truth + adversary taps -------------------------------------
    channels: list[ChannelTruth] = []
    for idx, (a, b, port) in enumerate(pairs):
        plan = dep.mic.channels[sockets[idx].channel_id].flows[0]
        channels.append(
            ChannelTruth(
                channel_id=sockets[idx].channel_id,
                initiator=a,
                responder=b,
                initiator_ip=str(dep.net.host(a).ip),
                responder_ip=str(dep.net.host(b).ip),
                service_port=port,
                payload_bytes=0,  # patched after the pumps finish
                first_mn=plan.walk[plan.mn_positions[0]],
                initiator_edge=plan.walk[1],
                responder_edge=plan.walk[-2],
            )
        )
    tap_names = sorted(
        {ch.first_mn for ch in channels}
        | {ch.initiator_edge for ch in channels}
        | {ch.responder_edge for ch in channels}
    )
    from .observer import ObservationPoint

    points = {name: ObservationPoint(dep.net, name) for name in tap_names}

    # -- churn: one mid-walk link flap on channel 0 ------------------------
    t0 = sim.now
    walk0 = dep.mic.channels[channels[0].channel_id].flows[0].walk
    mid = len(walk0) // 2
    schedule = FaultSchedule(seed=seed)
    schedule.link_flap(walk0[mid - 1], walk0[mid], at_s=t0 + 1.5, down_for_s=1.0)
    schedule.attach(dep.net, dep.ctrl)

    # -- probe pumps with per-channel traffic shapes -----------------------
    probes = [
        ChannelProbeStats(channel_id=ch.channel_id,
                          initiator=ch.initiator, responder=ch.responder)
        for ch in channels
    ]
    payload_sent = [0] * len(pairs)

    def pump(idx: int, stats: ChannelProbeStats):
        sock = sockets[idx]
        period_s, size = CHANNEL_SHAPES[idx]
        end = t0 + PUMP_HORIZON_S
        seq = 0
        while sim.now < end:
            data = f"probe:{idx}:{seq}:".encode().ljust(size, b"x")
            sock.send(data)
            stats.sent += 1
            payload_sent[idx] += len(data)
            seq += 1
            yield sim.timeout(period_s)

    def drain(idx: int, stats: ChannelProbeStats):
        sock = sockets[idx]
        while True:
            yield sock.recv()
            stats.answered += 1

    for idx, stats in enumerate(probes):
        sim.process(pump(idx, stats), name=f"tourney.pump{idx}")
        sim.process(drain(idx, stats), name=f"tourney.drain{idx}")

    # -- run, settle, score ------------------------------------------------
    dep.run_for(PUMP_HORIZON_S + 1.0)
    deadline = sim.now + 20.0
    while (dep.mic.parked_flows or dep.mic.repairs_in_flight) and sim.now < deadline:
        dep.run_for(0.5)
    dep.run_for(1.0)

    channels = [
        dataclasses.replace(ch, payload_bytes=payload_sent[idx])
        for idx, ch in enumerate(channels)
    ]
    journeys = (
        dep.journey.journeys_by_content_tag() if dep.journey is not None else {}
    )
    ctx = AttackContext(
        dep=dep,
        strategy_name=strategy,
        channels=channels,
        points=points,
        journeys=journeys,
    )

    verification = dep.mic.verify()
    card = build_scorecard(dep, probes, schedule, verification=verification)
    strat = dep.mic.strategy
    setups = [setup_s[i] for i in sorted(setup_s)]
    stats = {
        "availability": card["availability"]["overall"],
        "repairs_completed": card["repair"]["completed"],
        "verifier_ok": card["verification"]["ok"],
        "overhead": {
            "rules_installed": sum(dep.mic.rule_footprint().values()),
            "setup_latency_s_mean": sum(setups) / len(setups),
            "setup_latency_s_max": max(setups),
            "flow_mods_sent": dep.ctrl.flow_mods_sent,
            "rotations_completed": strat.rotations_completed,
            "rotation_installs": strat.rotation_installs,
            "aliases_live": strat.live_aliases,
        },
    }
    return ctx, stats


def score_strategy(
    strategy: str,
    seed: int = 0,
    k: int = 4,
    attacks: Optional[Sequence[str]] = None,
    **scenario_kwargs,
) -> dict:
    """One strategy's frontier entry: every attack's accuracy + overhead."""
    ctx, stats = run_scenario(strategy=strategy, seed=seed, k=k,
                              **scenario_kwargs)
    entry = dict(stats)
    entry["attacks"] = {
        name: get_attack(name).run(ctx).to_dict()
        for name in (attacks if attacks is not None else list(ATTACKS))
    }
    return entry


def run_tournament(
    strategies: Optional[Sequence[str]] = None,
    seed: int = 0,
    quick: bool = True,
    attacks: Optional[Sequence[str]] = None,
) -> dict:
    """Every strategy × every attack → the frontier document.

    ``quick`` runs fat_tree(4) only (the CI slice); the full tournament
    adds a fat_tree(8) round with a 20-bit m-address space per strategy.
    """
    names = list(strategies) if strategies is not None else sorted(STRATEGIES)
    rounds = [{"k": 4, "mn_bits": 16}]
    if not quick:
        rounds.append({"k": 8, "mn_bits": 20})
    frontier: dict = {
        "schema": 1,
        "seed": seed,
        "quick": quick,
        "attacks": sorted(attacks if attacks is not None else list(ATTACKS)),
        "rounds": [],
    }
    for spec in rounds:
        entry = {
            "topology": f"fat-tree-{spec['k']}",
            "mn_bits": spec["mn_bits"],
            "strategies": {
                name: score_strategy(name, seed=seed, attacks=attacks, **spec)
                for name in names
            },
        }
        frontier["rounds"].append(entry)
    return frontier


def frontier_json(frontier: dict) -> str:
    """Deterministic JSON form (sorted keys, fixed indent)."""
    return json.dumps(frontier, sort_keys=True, indent=2)
