"""Per-link m-address plausibility restrictions.

Sec IV-B3: "the m_src_ip and m_dst_ip should subject to different
restrictions on different MNs" — e.g. in a fat-tree, packets leaving toward
the core must carry source addresses from the subtree below, or an observer
could tell a fake address from a real one.

We generalize the paper's example to any topology: a pair of real hosts
(a, b) is *plausible* on directed link u→v iff some equal-cost shortest path
from a to b traverses u→v.  An m-address pair drawn from the plausible set
of every link of a segment is indistinguishable from a routed common flow at
every observation point on that segment.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..sdn.discovery import TopologyView

__all__ = ["AddressRestrictions"]


class AddressRestrictions:
    """Plausible (src_host, dst_host) sets per directed link / segment."""

    def __init__(self, view: TopologyView):
        self.view = view
        self._link_cache: dict[tuple[str, str], list[tuple[str, str]]] = {}

    def plausible_pairs(self, u: str, v: str) -> list[tuple[str, str]]:
        """Host pairs for which u→v is on a shortest path (cached)."""
        key = (u, v)
        if key not in self._link_cache:
            self._link_cache[key] = self.view.plausible_host_pairs(u, v)
        return self._link_cache[key]

    def pairs_for_segment(self, nodes: Sequence[str]) -> list[tuple[str, str]]:
        """Pairs plausible on *every* directed link of a node segment.

        Falls back to the first link's set when the intersection is empty
        (stretched bounce walks traverse link sequences no shortest path
        uses), and to the all-pairs universe as a last resort — a sampled
        address is always a real host pair.
        """
        links = list(zip(nodes, nodes[1:]))
        if not links:
            return self._universe()
        common: Optional[set[tuple[str, str]]] = None
        for u, v in links:
            pairs = set(self.plausible_pairs(u, v))
            common = pairs if common is None else (common & pairs)
            if not common:
                break
        if common:
            return sorted(common)
        first = self.plausible_pairs(*links[0])
        return first if first else self._universe()

    def _universe(self) -> list[tuple[str, str]]:
        hosts = self.view.topo.hosts()
        return [(a, b) for a in hosts for b in hosts if a != b]

    def sample_pair(
        self,
        nodes: Sequence[str],
        rng,
        avoid: Sequence[tuple[str, str]] = (),
    ) -> tuple[str, str]:
        """Draw a plausible pair for a segment, avoiding listed pairs when
        alternatives exist (used to keep decoys distinct from real draws)."""
        pool = self.pairs_for_segment(nodes)
        avoid_set = set(avoid)
        preferred = [p for p in pool if p not in avoid_set]
        return rng.choice(preferred if preferred else pool)

    def is_plausible(self, u: str, v: str, src_host: str, dst_host: str) -> bool:
        """True if the pair is plausible on directed link u→v."""
        return (src_host, dst_host) in set(self.plausible_pairs(u, v))
