"""The paper's evaluation experiments (Sec VI), one function per figure.

Every function builds fresh testbeds, drives the protocols on the simulated
clock, and returns a :class:`~repro.bench.harness.FigureResult` carrying the
same series the paper's figure plots.  ``benchmarks/`` wraps these in
pytest-benchmark targets; EXPERIMENTS.md records paper-vs-measured.
"""

# CPU-usage figures measure real elapsed time by design; the simulated
# results themselves stay seed-deterministic.  # lint: file-allow(wall-clock)

from __future__ import annotations

from typing import Optional, Sequence

from .drivers import Session, open_mic, open_ssl, open_tcp, open_tor
from .harness import FigureResult, run_process, setup_from_spans
from .testbed import Testbed
from ..obs import Histogram
from ..workloads.iperf import measure_echo, measure_transfer

__all__ = [
    "fig7_route_setup",
    "fig8_latency",
    "fig9a_throughput_vs_path_length",
    "fig9b_throughput_vs_flows",
    "fig9c_cpu_usage",
    "scalability_routing_calculation",
    "scalability_vs_fabric",
    "mic_fat_tree_scenario",
]

CLIENT, SERVER = "h1", "h16"  # cross-pod pair, 6 physical hops
ROUTE_LENGTHS = (1, 2, 3, 4, 5)


# ---------------------------------------------------------------------------
def fig7_route_setup(
    seed: int = 0, route_lengths: Sequence[int] = ROUTE_LENGTHS
) -> FigureResult:
    """Fig 7: route setup time vs route length.

    Route length = #MNs for MIC, #relays for Tor; TCP and SSL have no route
    length and appear as flat baselines.

    Every reported number is derived from the observability layer: the
    drivers record one ``bench.setup`` span per session, and this function
    reads those spans back (see docs/observability.md for the worked
    example) — the table and the metrics export cannot disagree.
    """
    result = FigureResult(
        "Fig 7", "Route setup time vs route length",
        x_label="route_len", y_label="setup time", unit="s",
    )
    port = 20000
    for n in route_lengths:
        port += 1
        bed = Testbed.create(seed=seed + n, observe=True)
        run_process(bed.net, open_tcp(bed, CLIENT, SERVER, port))
        run_process(bed.net, open_ssl(bed, CLIENT, SERVER, port + 1000))
        run_process(
            bed.net, open_mic(bed, CLIENT, SERVER, port + 2000, n_mns=n)
        )
        run_process(
            bed.net, open_tor(bed, CLIENT, SERVER, port + 3000, route_len=n)
        )
        result.add("TCP", n, setup_from_spans(bed.obs, "tcp"))
        result.add("SSL", n, setup_from_spans(bed.obs, "ssl"))
        result.add("MIC", n, setup_from_spans(bed.obs, "mic-tcp"))
        result.add("Tor", n, setup_from_spans(bed.obs, "tor"))
    return result


# ---------------------------------------------------------------------------
def fig8_latency(seed: int = 0, payload: int = 10, trials: int = 3) -> FigureResult:
    """Fig 8: 10-byte echo round-trip latency per protocol (established
    sessions; route length 3 for MIC and Tor).

    Each trial's RTT lands in the testbed's ``app.echo_rtt_s`` histogram
    and the reported per-protocol latency is the mean of an aggregate
    :class:`~repro.obs.Histogram` over all trials — the same summary the
    JSON/CSV/Prometheus exporters would emit for this metric.
    """
    result = FigureResult(
        "Fig 8", "Echo latency (10 B round trip)",
        x_label="protocol", y_label="latency", unit="s",
    )
    openers = {
        "TCP": lambda bed, port: open_tcp(bed, CLIENT, SERVER, port),
        "SSL": lambda bed, port: open_ssl(bed, CLIENT, SERVER, port),
        "MIC-TCP": lambda bed, port: open_mic(bed, CLIENT, SERVER, port, n_mns=3),
        "MIC-SSL": lambda bed, port: open_mic(
            bed, CLIENT, SERVER, port, n_mns=3, over_ssl=True
        ),
        "Tor": lambda bed, port: open_tor(bed, CLIENT, SERVER, port, route_len=3),
    }
    for name, opener in openers.items():
        aggregate = Histogram()
        for t in range(trials):
            bed = Testbed.create(seed=seed + t, observe=True)
            session = run_process(bed.net, opener(bed, 21000 + t))
            echo = run_process(
                bed.net,
                measure_echo(bed.net.sim, session.client, session.server, payload),
            )
            bed.obs.histogram(
                "app.echo_rtt_s", protocol=session.protocol
            ).observe(echo.rtt_s)
            aggregate.observe(echo.rtt_s)
        result.add(name, "rtt", aggregate.mean)
    return result


# ---------------------------------------------------------------------------
#: transfer volumes per protocol: Tor is event-heavy (per-cell relaying), so
#: it gets a smaller but still steady-state-dominated volume.
VOLUME = {"TCP": 2_000_000, "SSL": 2_000_000, "MIC": 2_000_000, "Tor": 400_000}


def _bulk_session(bed: Testbed, name: str, port: int, n: int) -> Session:
    if name == "TCP":
        return run_process(bed.net, open_tcp(bed, CLIENT, SERVER, port))
    if name == "SSL":
        return run_process(bed.net, open_ssl(bed, CLIENT, SERVER, port))
    if name == "MIC":
        return run_process(bed.net, open_mic(bed, CLIENT, SERVER, port, n_mns=n))
    if name == "Tor":
        return run_process(bed.net, open_tor(bed, CLIENT, SERVER, port, route_len=n))
    raise ValueError(name)


def fig9a_throughput_vs_path_length(
    seed: int = 0,
    route_lengths: Sequence[int] = ROUTE_LENGTHS,
    collect_cpu: Optional[dict] = None,
) -> FigureResult:
    """Fig 9(a): single-flow throughput vs route length.

    TCP/SSL have no route length (flat lines).  When ``collect_cpu`` is a
    dict, per-protocol CPU utilization during the transfer is recorded into
    it — Fig 9(c) reports exactly that instrumentation.
    """
    result = FigureResult(
        "Fig 9(a)", "Throughput of one flow vs route length",
        x_label="route_len", y_label="throughput", unit="bps",
    )
    for name in ("TCP", "SSL", "MIC", "Tor"):
        nbytes = VOLUME[name]
        for n in route_lengths:
            if name in ("TCP", "SSL") and n != route_lengths[0]:
                # No route-length knob: reuse the first measurement as the
                # flat baseline the paper draws.
                result.add(name, n, result.value(name, route_lengths[0]))
                continue
            bed = Testbed.create(seed=seed + n)
            session = _bulk_session(bed, name, 22000 + n, n)
            bed.reset_meters()
            t0 = bed.net.sim.now
            transfer = run_process(
                bed.net,
                measure_transfer(bed.net.sim, session.client, session.server, nbytes),
            )
            result.add(name, n, transfer.goodput_bps)
            if collect_cpu is not None:
                busy = bed.net.total_cpu_busy_s() + bed.mic.cpu_busy_s
                duration = bed.net.sim.now - t0
                collect_cpu.setdefault(name, []).append(
                    busy / duration if duration > 0 else 0.0
                )
    return result


# ---------------------------------------------------------------------------
def fig9b_throughput_vs_flows(
    seeds: Sequence[int] = (0, 1),
    flow_counts: Sequence[int] = (1, 2, 4, 8),
    route_len: int = 3,
) -> FigureResult:
    """Fig 9(b): average throughput vs number of concurrent flows (route
    length 3, the paper's default).

    Averaged over ``seeds``: with a handful of flows, which equal-cost path
    each one lands on dominates the variance for every protocol.
    """
    result = FigureResult(
        "Fig 9(b)", "Average throughput vs number of flows",
        x_label="n_flows", y_label="avg throughput", unit="bps",
    )
    hosts = [f"h{i}" for i in range(1, 17)]
    for name in ("TCP", "SSL", "MIC", "Tor"):
        nbytes = VOLUME[name]
        for count in flow_counts:
            seed_means: list[float] = []
            for seed in seeds:
                seed_means.append(
                    _fig9b_one(name, count, seed, route_len, hosts, nbytes)
                )
            result.add(name, count, sum(seed_means) / len(seed_means))
    return result


def _fig9b_one(
    name: str, count: int, seed: int, route_len: int,
    hosts: Sequence[str], nbytes: int,
) -> float:
    bed = Testbed.create(seed=seed)
    # Sources h1,h3,h5,… sit on distinct edge switches, destinations land on
    # the remaining distinct edges — so edge uplinks never contend and the
    # measurement isolates fabric sharing (agg/core ECMP), the effect the
    # paper's figure is about.
    pairs = [(hosts[(2 * i) % 16], hosts[(2 * i + 9) % 16]) for i in range(count)]
    sessions: list[Session] = []

    def open_all():
        for i, (a, b) in enumerate(pairs):
            port = 23000 + i
            if name == "TCP":
                s = yield from open_tcp(bed, a, b, port)
            elif name == "SSL":
                s = yield from open_ssl(bed, a, b, port)
            elif name == "MIC":
                s = yield from open_mic(bed, a, b, port, n_mns=route_len)
            else:
                s = yield from open_tor(bed, a, b, port, route_len=route_len)
            sessions.append(s)

    run_process(bed.net, open_all())

    goodputs: list[float] = []

    def transfer_all():
        procs = [
            bed.net.sim.process(
                measure_transfer(bed.net.sim, s.client, s.server, nbytes)
            )
            for s in sessions
        ]
        results = yield bed.net.sim.all_of(procs)
        goodputs.extend(r.goodput_bps for r in results)

    run_process(bed.net, transfer_all())
    return sum(goodputs) / len(goodputs)


# ---------------------------------------------------------------------------
def fig9c_cpu_usage(
    seed: int = 0, route_lengths: Sequence[int] = ROUTE_LENGTHS
) -> FigureResult:
    """Fig 9(c): overall CPU usage while running the Fig 9(a) evaluation."""
    cpu: dict = {}
    fig9a_throughput_vs_path_length(seed=seed, route_lengths=route_lengths,
                                    collect_cpu=cpu)
    result = FigureResult(
        "Fig 9(c)", "CPU usage during the Fig 9(a) evaluation",
        x_label="protocol", y_label="CPU (core-equivalents busy)", unit="cores",
    )
    for name, samples in cpu.items():
        result.add(name, "cpu", sum(samples) / len(samples))
    return result


# ---------------------------------------------------------------------------
def scalability_routing_calculation(
    seed: int = 0, flow_counts: Sequence[int] = (1, 2, 4, 8)
) -> FigureResult:
    """Sec VI-C: MC routing-calculation cost is O(|F|) in the m-flow count.

    Measures real (wall-clock) planning compute per channel request,
    excluding rule-install latency, since that is what loads the MC.
    """
    import time

    result = FigureResult(
        "Sec VI-C", "MC routing calculation time vs m-flow count",
        x_label="n_flows", y_label="plan time", unit="s",
    )
    import gc
    import statistics

    for count in flow_counts:
        bed = Testbed.create(seed=seed, pre_wire=False)
        mic = bed.mic
        # Warm the per-pair path/plausibility caches: the paper's MC builds
        # its all-pairs structures "when initiation", not per request.
        warm = mic._plan_flow("h1", "h16", 80, 3, cookie=0, owner="warm")
        mic.registry.release_owner("warm")
        mic.flow_ids.release(warm.flow_id)
        # Median of per-rep wall times, with a collection first: this is a
        # microbenchmark and must not absorb GC pauses caused by earlier
        # experiments' garbage.
        gc.collect()
        reps = 20
        samples = []
        for r in range(reps):
            owner = f"bench{r}-{count}"
            t0 = time.perf_counter()
            plans = [
                mic._plan_flow("h1", "h16", 80, 3, cookie=r * 100 + i,
                               owner=owner)
                for i in range(count)
            ]
            samples.append(time.perf_counter() - t0)
            mic.registry.release_owner(owner)
            for plan in plans:
                mic.flow_ids.release(plan.flow_id)
        result.add("MIC plan", count, statistics.median(samples))
    return result


def scalability_vs_fabric(
    seed: int = 0, ks: Sequence[int] = (4, 6, 8)
) -> FigureResult:
    """Sec VI-C extension: per-channel planning cost vs fabric size.

    The hash work is O(1) in the fabric; only the equal-cost path lookup
    and plausibility sampling touch topology-sized structures (and those
    are cached after first use)."""
    import time

    from ..net import fat_tree

    result = FigureResult(
        "Sec VI-C/fabric", "MC planning time per channel vs fabric size",
        x_label="fabric", y_label="plan time", unit="s",
    )
    for k in ks:
        topo = fat_tree(k)
        # Bigger fabrics need more S_ID values: shrink the g-hash shift so
        # the ID space covers every switch (the knob the paper leaves to
        # the deployment).
        mn_shift = 2 if len(topo.switches()) <= 60 else 1
        bed = Testbed.create(seed=seed, topo=topo, pre_wire=False,
                             relay_hosts=(),
                             mic_kwargs={"mn_shift": mn_shift})
        mic = bed.mic
        hosts = topo.hosts()
        src, dst = hosts[0], hosts[-1]
        # Warm the path/plausibility caches (the MC does this at init in
        # the paper: "calculates all-pairs ... when initiation").
        mic._plan_flow(src, dst, 80, 3, cookie=0, owner="warm")
        mic.registry.release_owner("warm")
        mic.flow_ids._live.clear()
        t0 = time.perf_counter()
        reps = 30
        for r in range(reps):
            owner = f"f{r}"
            plan = mic._plan_flow(src, dst, 80, 3, cookie=r + 1, owner=owner)
            mic.registry.release_owner(owner)
            mic.flow_ids.release(plan.flow_id)
        result.add("plan time", f"k={k} ({len(hosts)} hosts)",
                   (time.perf_counter() - t0) / reps)
    return result


def mic_fat_tree_scenario(
    seed: int = 0,
    k: int = 8,
    n_pairs: int = 4,
    n_mns: int = 4,
    payload: int = 256,
) -> FigureResult:
    """End-to-end MIC scenario on a ``k``-ary fat tree (k=8: 80 switches,
    128 hosts).

    Establishes ``n_pairs`` cross-fabric MIC channels, echoes ``payload``
    bytes over each, and reports channel success, simulated time, wall time
    and the MIC rule footprint.  The L3 app is reactive (PacketIn-driven),
    so nothing is pre-wired — the fabric's tables grow only along the
    anonymized paths actually taken, which is what makes large fabrics
    cheap to stand up but makes per-packet classification the hot path
    this scenario exercises.
    """
    import time

    from ..net import fat_tree

    topo = fat_tree(k)
    # Bigger fabrics need more S_ID values: see scalability_vs_fabric.
    mn_shift = 2 if len(topo.switches()) <= 60 else 1
    bed = Testbed.create(seed=seed, topo=topo, pre_wire=False,
                         relay_hosts=(), mic_kwargs={"mn_shift": mn_shift})
    hosts = topo.hosts()
    pairs = [(hosts[i], hosts[-1 - i]) for i in range(n_pairs)]

    t0 = time.perf_counter()
    ok = 0
    for i, (src, dst) in enumerate(pairs):
        session = run_process(
            bed.net, open_mic(bed, src, dst, 30000 + i, n_mns=n_mns)
        )
        echo = run_process(
            bed.net,
            measure_echo(bed.net.sim, session.client, session.server,
                         nbytes=payload),
        )
        if echo is not None and echo.payload_bytes == payload:
            ok += 1
    wall_s = time.perf_counter() - t0

    footprint = bed.mic.rule_footprint()
    result = FigureResult(
        "Sec VI-C/e2e", f"MIC end-to-end scenario on fat_tree({k})",
        x_label="metric", y_label="value",
    )
    result.add("scenario", "hosts", len(hosts))
    result.add("scenario", "switches", len(topo.switches()))
    result.add("scenario", "channels", len(pairs))
    result.add("scenario", "reply_ok", ok / len(pairs))
    result.add("scenario", "sim_time_s", bed.net.sim.now)
    result.add("scenario", "wall_s", wall_s)
    result.add("scenario", "mic_rules_total", sum(footprint.values()))
    result.add("scenario", "mic_rules_max_per_switch",
               max(footprint.values(), default=0))
    return result
