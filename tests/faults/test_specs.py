"""Fault spec validation and schedule compilation."""

import pytest

from repro.faults import (
    ControlPartition,
    FaultSchedule,
    LinkFlap,
    RuleInstallLoss,
    SwitchCrash,
)
from repro.net import Network, linear


class TestSpecValidation:
    def test_link_flap_windows(self):
        flap = LinkFlap("a", "b", at_s=1.0, down_for_s=0.5, period_s=2.0, count=3)
        flap.validate()
        assert list(flap.windows()) == [(1.0, 1.5), (3.0, 3.5), (5.0, 5.5)]

    def test_one_shot_flap_single_window(self):
        flap = LinkFlap("a", "b", at_s=0.25, down_for_s=1.0)
        flap.validate()
        assert list(flap.windows()) == [(0.25, 1.25)]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(at_s=-1.0, down_for_s=1.0),
            dict(at_s=0.0, down_for_s=0.0),
            dict(at_s=0.0, down_for_s=1.0, count=0),
            dict(at_s=0.0, down_for_s=1.0, period_s=0.5, count=2),
            dict(at_s=0.0, down_for_s=1.0, count=2),  # count>1 needs period
        ],
    )
    def test_link_flap_rejects(self, kwargs):
        with pytest.raises(ValueError):
            LinkFlap("a", "b", **kwargs).validate()

    def test_switch_crash(self):
        crash = SwitchCrash("s1", at_s=2.0, down_for_s=1.0)
        crash.validate()
        assert list(crash.windows()) == [(2.0, 3.0)]
        with pytest.raises(ValueError):
            SwitchCrash("s1", at_s=2.0, down_for_s=0.0).validate()

    def test_control_partition_window(self):
        part = ControlPartition("s1", at_s=1.0, duration_s=2.0)
        part.validate()
        assert not part.active(0.5, "s1")
        assert part.active(1.0, "s1")
        assert part.active(2.9, "s1")
        assert not part.active(3.0, "s1")  # half-open window
        assert not part.active(1.5, "s2")  # other switch unaffected

    def test_rule_install_loss_scope_and_window(self):
        loss = RuleInstallLoss(at_s=1.0, duration_s=1.0, loss_prob=0.5,
                               switches=("s1", "s3"))
        loss.validate()
        assert loss.active(1.5, "s1")
        assert not loss.active(1.5, "s2")
        assert not loss.active(2.5, "s1")
        everywhere = RuleInstallLoss(at_s=0.0, duration_s=1.0, delay_prob=1.0,
                                     extra_delay_s=0.01)
        everywhere.validate()
        assert everywhere.active(0.5, "anything")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(loss_prob=1.5),
            dict(delay_prob=-0.1),
            dict(loss_prob=0.5, extra_delay_s=-1.0),
            dict(),  # neither loss nor delay
        ],
    )
    def test_rule_install_loss_rejects(self, kwargs):
        with pytest.raises(ValueError):
            RuleInstallLoss(at_s=0.0, duration_s=1.0, **kwargs).validate()

    def test_describe_is_informative(self):
        assert "a<->b" in LinkFlap("a", "b", 1.0, 0.5).describe()
        assert "s1" in SwitchCrash("s1", 1.0, 0.5).describe()
        assert "s1" in ControlPartition("s1", 1.0, 0.5).describe()
        assert "p=0.3" in RuleInstallLoss(0.0, 1.0, loss_prob=0.3).describe()


class TestSchedule:
    def test_builders_validate_and_collect(self):
        sched = FaultSchedule(seed=4)
        sched.link_flap("a", "b", at_s=1.0, down_for_s=0.5)
        sched.switch_crash("s1", at_s=2.0, down_for_s=1.0)
        sched.control_partition("s1", at_s=3.0, duration_s=1.0)
        sched.rule_install_loss(at_s=0.0, duration_s=5.0, loss_prob=0.5)
        assert len(sched) == 4
        assert sched.needs_fault_plane
        assert "seed=4" in sched.describe()
        with pytest.raises(ValueError):
            sched.link_flap("a", "b", at_s=-1.0, down_for_s=0.5)

    def test_timed_only_schedule_needs_no_fault_plane(self):
        sched = FaultSchedule()
        sched.link_flap("a", "b", at_s=1.0, down_for_s=0.5)
        sched.switch_crash("s1", at_s=2.0, down_for_s=1.0)
        assert not sched.needs_fault_plane

    def test_timeline_is_sorted(self):
        sched = FaultSchedule()
        sched.switch_crash("s1", at_s=5.0, down_for_s=1.0)
        sched.link_flap("a", "b", at_s=1.0, down_for_s=0.5, period_s=3.0, count=2)
        sched.control_partition("s2", at_s=2.0, duration_s=1.0)
        times = [t for t, _desc in sched.timeline()]
        assert times == sorted(times)
        assert len(times) == 2 * 2 + 2 + 2

    def test_attach_schedules_events_and_is_single_shot(self):
        net = Network(linear(2, hosts_per_switch=1), seed=0)
        sched = FaultSchedule()
        sched.link_flap("s1", "s2", at_s=0.5, down_for_s=0.25)
        sched.attach(net)
        assert sched.injected_events == 2
        with pytest.raises(RuntimeError):
            sched.attach(net)
        with pytest.raises(RuntimeError):
            sched.link_flap("s1", "s2", at_s=2.0, down_for_s=0.25)

        link = net.link_between("s1", "s2")
        net.run(until=0.6)
        assert not link.forward.up and not link.reverse.up
        net.run(until=1.0)
        assert link.forward.up and link.reverse.up

    def test_flowmod_fate_is_seeded(self):
        def draws(seed):
            net = Network(linear(2, hosts_per_switch=1), seed=0)
            sched = FaultSchedule(seed=seed)
            sched.rule_install_loss(at_s=0.0, duration_s=10.0, loss_prob=0.5,
                                    delay_prob=0.5, extra_delay_s=0.001)
            sched.attach(net)
            return [sched.flowmod_fate("s1") for _ in range(64)]

        assert draws(11) == draws(11)
        assert draws(11) != draws(12)

    def test_partition_check_is_rng_free(self):
        net = Network(linear(2, hosts_per_switch=1), seed=0)
        sched = FaultSchedule()
        sched.control_partition("s1", at_s=0.0, duration_s=10.0)
        sched.rule_install_loss(at_s=0.0, duration_s=10.0, loss_prob=0.5)
        sched.attach(net)
        state = sched.rng.getstate()
        assert sched.packet_in_blocked("s1")
        assert not sched.packet_in_blocked("s2")
        assert sched.rng.getstate() == state
