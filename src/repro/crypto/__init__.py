"""Crypto cost model and functional toy primitives.

Replaces the paper's use of OpenSSL (AES for MIC's request encryption,
RSA/DH for key exchange, TLS for the SSL baseline, onion layers for Tor).
"""

from .costmodel import DEFAULT_COSTS, CryptoCostModel
from .primitives import Key, KeyExchange, Sealed, WrongKeyError, seal, unseal

__all__ = [
    "CryptoCostModel",
    "DEFAULT_COSTS",
    "Key",
    "KeyExchange",
    "Sealed",
    "WrongKeyError",
    "seal",
    "unseal",
]
