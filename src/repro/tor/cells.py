"""Tor cell types (simplified but structurally faithful).

All cells ride :class:`repro.transport.framing.MessageChannel` frames of the
canonical fixed :data:`CELL_SIZE`, so an observer sees uniform 512-byte cells
— exactly the property real Tor relies on.

Control cells (CREATE/CREATED) are link-local; everything else travels as a
``RelayCell`` whose payload is onion-sealed: each hop peels (forward) or adds
(backward) one layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..net.addresses import IPv4Addr

__all__ = [
    "CELL_SIZE",
    "CreateCell",
    "CreatedCell",
    "RelayCell",
    "ExtendPayload",
    "ExtendedPayload",
    "BeginPayload",
    "ConnectedPayload",
    "DataPayload",
    "EndPayload",
    "SendmePayload",
]

#: fixed Tor cell size in bytes
CELL_SIZE = 512


@dataclass(frozen=True)
class CreateCell:
    """Link-local circuit creation: carries the client's DH half.

    ``initiator`` is a per-circuit random session token (like a DH public
    value) — it lets the two ends derive the same key without identifying
    the client."""

    circ_id: int
    initiator: str
    nonce: int


@dataclass(frozen=True)
class CreatedCell:
    """Relay's DH answer."""

    circ_id: int


@dataclass(frozen=True)
class RelayCell:
    """An onion-wrapped relayed cell (forward or backward)."""

    circ_id: int
    payload: Any  # Sealed(...) onion; innermost is one of the payloads below
    direction: str = "fwd"  # "fwd" | "bwd"

    def __post_init__(self) -> None:
        if self.direction not in ("fwd", "bwd"):
            raise ValueError(f"bad direction {self.direction!r}")


@dataclass(frozen=True)
class ExtendPayload:
    """Ask the current last hop to extend the circuit."""

    next_relay: str
    session: str
    nonce: int


@dataclass(frozen=True)
class ExtendedPayload:
    """Confirmation that the circuit was extended."""

    ok: bool = True


@dataclass(frozen=True)
class BeginPayload:
    """Ask the exit relay to open a TCP stream to the target."""

    target_ip: IPv4Addr
    target_port: int


@dataclass(frozen=True)
class ConnectedPayload:
    ok: bool = True


@dataclass(frozen=True)
class DataPayload:
    """Application bytes on the stream (size counts toward cell budget)."""

    data: bytes


@dataclass(frozen=True)
class EndPayload:
    """Stream teardown."""


@dataclass(frozen=True)
class SendmePayload:
    """Flow-control credit: opens the sender's window by one SENDME batch."""
