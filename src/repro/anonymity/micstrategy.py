"""MIC's own mechanism as a Strategy: static per-segment rewriting.

This is the identity point of the strategy layer: every draw and every
compiled rule comes from the base class, which carries the historical
``MimicController`` logic unchanged — ``tests/anonymity`` proves the
compiled intents are byte-identical to the pre-refactor controller.
"""

from __future__ import annotations

from .base import Strategy, register_strategy

__all__ = ["MicRewrite"]


@register_strategy
class MicRewrite(Strategy):
    """Static m-addresses along an MC-planned walk (the paper's design)."""

    name = "mic"
    source = "MIC (ICPP'16)"
    mechanism = (
        "static per-segment header rewriting at Mimic Nodes; "
        "partial-multicast decoys"
    )
    knobs = "`n_mns`, `decoys`"
