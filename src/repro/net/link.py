"""Event-driven link model.

A :class:`Link` joins two node ports with a full-duplex pair of directed
channels.  Each direction serializes packets at the link bandwidth, applies
propagation delay, and drops when the transmit backlog exceeds the queue
budget — all without a dedicated process per link: the channel keeps a
"transmitter free at" watermark and schedules one delivery event per packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..sim import Simulator, TraceLog
from .packet import Packet
from .params import NetParams

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

__all__ = ["Channel", "Link", "LinkStats"]


@dataclass
class LinkStats:
    """Per-direction counters."""

    packets: int = 0
    bytes: int = 0
    drops: int = 0


class Channel:
    """One direction of a link: src node/port → dst node/port."""

    def __init__(
        self,
        sim: Simulator,
        trace: TraceLog,
        src: "Node",
        src_port: int,
        dst: "Node",
        dst_port: int,
        bandwidth_bps: float,
        delay_s: float,
        queue_bytes: int,
    ):
        self.sim = sim
        self.trace = trace
        self.src = src
        self.src_port = src_port
        self.dst = dst
        self.dst_port = dst_port
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.queue_bytes = queue_bytes
        self.stats = LinkStats()
        self._tx_free_at = 0.0
        self.up = True
        #: optional attached repro.obs.journey.JourneyRecorder
        self.journey = None
        #: fluid background load published by repro.net.hybrid each epoch;
        #: 0.0 keeps the packet hot path byte-identical to a bare engine
        self.fluid_load_bps = 0.0

    @property
    def name(self) -> str:
        """Directed link label, e.g. ``a[1]->b[2]``."""
        return f"{self.src.name}[{self.src_port}]->{self.dst.name}[{self.dst_port}]"

    def effective_bandwidth_bps(self) -> float:
        """Serialization bandwidth left for packet-level traffic.

        The hybrid hand-off contract (docs/scale.md): fluid background load
        debits the bandwidth packets serialize at, floored at 1% of capacity
        so packet traffic is never fully starved.  With no fluid load the
        branch is untaken and the arithmetic identical to a bare engine.
        """
        fluid = self.fluid_load_bps
        if fluid:
            return max(self.bandwidth_bps - fluid, self.bandwidth_bps * 0.01)
        return self.bandwidth_bps

    def backlog_bytes(self) -> int:
        """Bytes currently queued ahead of a new arrival."""
        pending_s = max(0.0, self._tx_free_at - self.sim.now)
        return int(pending_s * self.effective_bandwidth_bps() / 8.0)

    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission; False means tail-dropped."""
        backlog = self.backlog_bytes()
        if not self.up:
            self.stats.drops += 1
            self.trace.emit(
                self.sim.now, "link.drop", self.name,
                uid=packet.uid, size=packet.size,
            )
            if self.journey is not None:
                self.journey.on_link_drop(self, packet, backlog)
            return False
        if backlog + packet.size > self.queue_bytes:
            self.stats.drops += 1
            self.trace.emit(
                self.sim.now, "link.drop", self.name, uid=packet.uid, size=packet.size
            )
            if self.journey is not None:
                self.journey.on_link_drop(self, packet, backlog)
            return False
        tx_time = packet.size * 8.0 / self.effective_bandwidth_bps()
        start = max(self.sim.now, self._tx_free_at)
        self._tx_free_at = start + tx_time
        deliver_at = self._tx_free_at + self.delay_s
        self.stats.packets += 1
        self.stats.bytes += packet.size
        if self.journey is not None:
            self.journey.on_link_tx(
                self, packet, start - self.sim.now, tx_time, backlog
            )
        self.trace.emit(
            self.sim.now,
            "link.tx",
            self.name,
            uid=packet.uid,
            content_tag=packet.content_tag,
            size=packet.size,
            src_ip=str(packet.ip_src),
            dst_ip=str(packet.ip_dst),
            mpls=packet.mpls,
        )
        self.sim.call_at(deliver_at, lambda: self._deliver(packet))
        return True

    def _deliver(self, packet: Packet) -> None:
        if not self.up:
            # The link went down while the packet was in flight (serializing
            # or propagating): it is lost, and the loss must be visible —
            # silently returning here would leave drops uncounted and
            # journeys dangling mid-hop.
            self.stats.drops += 1
            self.trace.emit(
                self.sim.now, "link.drop", self.name,
                uid=packet.uid, size=packet.size, in_flight=True,
            )
            if self.journey is not None:
                self.journey.on_link_drop(self, packet, self.backlog_bytes())
            return
        self.dst.receive(packet, self.dst_port)

    def set_state(self, up: bool) -> None:
        """Administratively flip this direction's state."""
        changed = up != self.up
        self.up = up
        if changed and not up and self.journey is not None:
            self.journey.on_link_state(self, up)


class Link:
    """Full-duplex link: a pair of mirrored :class:`Channel` objects."""

    def __init__(
        self,
        sim: Simulator,
        trace: TraceLog,
        a: "Node",
        a_port: int,
        b: "Node",
        b_port: int,
        params: NetParams,
        bandwidth_bps: Optional[float] = None,
        delay_s: Optional[float] = None,
    ):
        bw = bandwidth_bps if bandwidth_bps is not None else params.link_bandwidth_bps
        delay = delay_s if delay_s is not None else params.link_delay_s
        self.forward = Channel(
            sim, trace, a, a_port, b, b_port, bw, delay, params.link_queue_bytes
        )
        self.reverse = Channel(
            sim, trace, b, b_port, a, a_port, bw, delay, params.link_queue_bytes
        )
        a.attach(a_port, self.forward)
        b.attach(b_port, self.reverse)

    def set_up(self, up: bool) -> None:
        """Bring both directions up or down."""
        self.forward.set_state(up)
        self.reverse.set_state(up)

    @property
    def endpoints(self) -> tuple[str, str]:
        """The two node names this link joins."""
        return (self.forward.src.name, self.forward.dst.name)
