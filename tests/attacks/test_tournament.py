"""The attack registry and the strategy-vs-attack tournament driver."""

import json
import pathlib

import pytest

from repro.anonymity import STRATEGIES
from repro.attacks import (
    ATTACKS,
    Attack,
    format_attack_table,
    frontier_json,
    get_attack,
    register_attack,
    run_tournament,
)

FRONTIER_GOLDEN = (
    pathlib.Path(__file__).resolve().parent.parent
    / "data" / "frontier_quick_seed0_accuracies.json"
)


# -- registry ------------------------------------------------------------

def test_registry_covers_the_required_adversary_suite():
    assert len(ATTACKS) >= 4
    assert {"mn-correlation", "timing-correlation", "size-fingerprint",
            "watermark", "churn-exploit"} <= set(ATTACKS)


def test_get_attack_resolves_and_rejects_unknown():
    assert get_attack("watermark").name == "watermark"
    with pytest.raises(ValueError, match="unknown"):
        get_attack("rubber-hose")


def test_register_attack_rejects_duplicate_names():
    class Dup(Attack):
        name = "watermark"
        vantage = "x"
        signal = "y"
        scored_against = "z"

        def run(self, ctx):  # pragma: no cover
            raise NotImplementedError

    with pytest.raises(ValueError, match="duplicate"):
        register_attack(Dup)


def test_attack_table_has_one_row_per_attack():
    table = format_attack_table()
    for name in ATTACKS:
        assert f"`{name}`" in table


# -- tournament ----------------------------------------------------------

@pytest.fixture(scope="module")
def quick_frontier():
    return run_tournament(seed=0, quick=True)


def test_frontier_is_byte_identical_across_reruns(quick_frontier):
    again = run_tournament(seed=0, quick=True)
    assert frontier_json(quick_frontier) == frontier_json(again)


def test_frontier_covers_strategies_times_attacks(quick_frontier):
    rounds = quick_frontier["rounds"]
    assert len(rounds) == 1 and rounds[0]["topology"] == "fat-tree-4"
    strategies = rounds[0]["strategies"]
    assert set(strategies) == set(STRATEGIES) and len(strategies) >= 3
    assert set(quick_frontier["attacks"]) == set(ATTACKS)
    for name, entry in strategies.items():
        assert set(entry["attacks"]) == set(ATTACKS)
        for attack, res in entry["attacks"].items():
            assert 0.0 <= res["accuracy"] <= 1.0, (name, attack, res)


def test_frontier_reports_the_overhead_axis(quick_frontier):
    strategies = quick_frontier["rounds"][0]["strategies"]
    for name, entry in strategies.items():
        ov = entry["overhead"]
        assert ov["rules_installed"] > 0
        assert ov["setup_latency_s_mean"] > 0
        assert entry["availability"] == pytest.approx(1.0), (
            f"{name}: channels did not survive the injected fault")
        assert entry["verifier_ok"] is True
    # The axes actually separate the strategies: rotation churn shows
    # only under tarn, alias fan-out only under frvm.
    assert strategies["mic"]["overhead"]["rotations_completed"] == 0
    assert strategies["tarn"]["overhead"]["rotations_completed"] > 0
    assert strategies["mic"]["overhead"]["aliases_live"] == 0
    assert strategies["frvm"]["overhead"]["aliases_live"] > 0


def test_frontier_accuracies_match_the_pinned_golden(quick_frontier):
    """The current frontier is pinned byte for byte, so any future defense
    (or attack tweak) surfaces as an explicit diff against
    ``tests/data/frontier_quick_seed0_accuracies.json``.

    Regenerate (only when the change to the frontier is *intended*)::

        PYTHONPATH=src python -c "
        import json, pathlib
        from repro.attacks import run_tournament
        f = run_tournament(seed=0, quick=True)
        acc = {s: {a: round(r['accuracy'], 6)
                   for a, r in e['attacks'].items()}
               for s, e in f['rounds'][0]['strategies'].items()}
        pathlib.Path('tests/data/frontier_quick_seed0_accuracies.json'
                     ).write_text(json.dumps(acc, indent=2, sort_keys=True)
                                  + '\\n')"
    """
    golden = json.loads(FRONTIER_GOLDEN.read_text())
    acc = {
        s: {a: round(res["accuracy"], 6)
            for a, res in entry["attacks"].items()}
        for s, entry in quick_frontier["rounds"][0]["strategies"].items()
    }
    assert acc == golden, (
        "the strategy-vs-attack frontier moved — if a defense or attack "
        "change is intended, regenerate the golden (see docstring) and "
        "call the shift out in the PR"
    )


def test_watermark_still_defeats_every_strategy(quick_frontier):
    """No deployed strategy defends against the active watermark yet: its
    accuracy is pinned at exactly 1.0 across the board.  The open defense
    (cover traffic / flow padding) is tracked in docs/anonymity.md — when
    it lands, this test is the tripwire that must flip."""
    strategies = quick_frontier["rounds"][0]["strategies"]
    for name, entry in strategies.items():
        assert entry["attacks"]["watermark"]["accuracy"] == 1.0, (
            f"{name} now resists the watermark — update the pinned "
            "frontier and the open-defense note in docs/anonymity.md"
        )


def test_frontier_json_round_trips(quick_frontier):
    text = frontier_json(quick_frontier)
    assert json.loads(text) == quick_frontier
    assert text == json.dumps(quick_frontier, indent=2, sort_keys=True)


def test_cli_writes_the_frontier_artifact(tmp_path, capsys):
    from repro.attacks.__main__ import main

    out = tmp_path / "frontier.json"
    rc = main([
        "tournament", "--quick", "--seed", "0",
        "--strategies", "mic", "--attacks", "watermark",
        "-o", str(out), "--no-summary",
    ])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["attacks"] == ["watermark"]
    assert list(doc["rounds"][0]["strategies"]) == ["mic"]


def test_cli_table_subcommand(capsys):
    from repro.attacks.__main__ import main

    assert main(["table"]) == 0
    assert "`watermark`" in capsys.readouterr().out
