"""Tests for distributed-controller ID-space sharding (Sec VI-C)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    IdSpacePartition,
    MimicController,
    ShardedFlowIdAllocator,
    shard_controllers,
)
from repro.net import Network, fat_tree
from repro.sdn import Controller


class TestShardedAllocator:
    def test_ids_within_bounds(self):
        alloc = ShardedFlowIdAllocator(base=100, size=10)
        ids = [alloc.allocate() for _ in range(10)]
        assert all(100 <= i < 110 for i in ids)
        assert len(set(ids)) == 10

    def test_exhaustion_at_shard_size(self):
        alloc = ShardedFlowIdAllocator(base=0, size=2)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(RuntimeError):
            alloc.allocate()

    def test_release_and_ownership(self):
        alloc = ShardedFlowIdAllocator(base=50, size=4)
        fid = alloc.allocate()
        assert alloc.is_live(fid) and alloc.owns(fid)
        alloc.release(fid)
        assert not alloc.is_live(fid)
        with pytest.raises(ValueError):
            alloc.release(999)

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            ShardedFlowIdAllocator(-1, 5)
        with pytest.raises(ValueError):
            ShardedFlowIdAllocator(0, 0)


class TestPartition:
    def test_shards_cover_space_disjointly(self):
        part = IdSpacePartition(total_values=100, n_shards=3)
        ranges = [
            set(range(s.base, s.base + s.size)) for s in part.shards()
        ]
        union = set().union(*ranges)
        assert union == set(range(100))
        assert sum(len(r) for r in ranges) == 100  # pairwise disjoint

    @settings(max_examples=80, deadline=None)
    @given(total=st.integers(1, 10_000), n=st.integers(1, 32))
    def test_partition_property(self, total, n):
        if total < n:
            with pytest.raises(ValueError):
                IdSpacePartition(total, n)
            return
        part = IdSpacePartition(total, n)
        seen = set()
        for s in part.shards():
            ids = set(range(s.base, s.base + s.size))
            assert not (seen & ids)
            seen |= ids
        assert seen == set(range(total))

    def test_bad_shard_index(self):
        part = IdSpacePartition(10, 2)
        with pytest.raises(ValueError):
            part.shard(2)


class TestShardControllers:
    def _mics(self, n):
        mics = []
        for i in range(n):
            net = Network(fat_tree(4), seed=i)
            ctrl = Controller(net)
            mics.append(ctrl.register(MimicController()))
        return mics

    def test_cross_controller_ids_never_collide(self):
        mics = self._mics(2)
        shard_controllers(mics)
        ids_a = [mics[0].flow_ids.allocate() for _ in range(50)]
        ids_b = [mics[1].flow_ids.allocate() for _ in range(50)]
        assert not (set(ids_a) & set(ids_b))

    def test_resharding_with_live_flows_rejected(self):
        mics = self._mics(2)
        mics[0].flow_ids.allocate()
        with pytest.raises(ValueError):
            shard_controllers(mics)

    def test_mismatched_spaces_rejected(self):
        net1 = Network(fat_tree(4), seed=0)
        mic1 = Controller(net1).register(MimicController())
        net2 = Network(fat_tree(4), seed=1)
        mic2 = Controller(net2).register(MimicController(flow_shift=4))
        with pytest.raises(ValueError):
            shard_controllers([mic1, mic2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            shard_controllers([])
