"""Adversary machinery and anonymity metrics for the security analysis."""

from .anonymity_set import (
    EmpiricalAnonymity,
    LinkAnonymity,
    empirical_anonymity,
    link_anonymity,
    walk_anonymity,
)
from .compromise import LeakReport, analyze_position, unlinkability_holds
from .correlation import (
    CorrelationResult,
    GroundTruthCorrelation,
    correlate_at_mn,
    correlate_with_truth,
    end_to_end_correlation,
)
from .metrics import (
    anonymity_set_size,
    expected_uniform_accuracy,
    linkage_success_rate,
    normalized_entropy,
    posterior_entropy,
)
from .observer import Observation, ObservationPoint, node_vantage, observe_switches
from .size_analysis import FlowSizeEstimate, estimate_flow_sizes, size_estimate_error
from .targeting import TargetRanking, rank_targets
from .timing import correlate_by_timing, interarrival_signature, rate_similarity

__all__ = [
    "CorrelationResult",
    "GroundTruthCorrelation",
    "correlate_with_truth",
    "FlowSizeEstimate",
    "LeakReport",
    "LinkAnonymity",
    "EmpiricalAnonymity",
    "empirical_anonymity",
    "expected_uniform_accuracy",
    "link_anonymity",
    "walk_anonymity",
    "Observation",
    "ObservationPoint",
    "analyze_position",
    "anonymity_set_size",
    "correlate_at_mn",
    "correlate_by_timing",
    "end_to_end_correlation",
    "interarrival_signature",
    "rate_similarity",
    "rank_targets",
    "TargetRanking",
    "estimate_flow_sizes",
    "linkage_success_rate",
    "node_vantage",
    "normalized_entropy",
    "observe_switches",
    "posterior_entropy",
    "size_estimate_error",
    "unlinkability_holds",
]
