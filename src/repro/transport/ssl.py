"""SSL/TLS layer over simulated TCP.

Models the two costs that matter for the paper's comparisons:

* **handshake**: two additional round-trips of flights over the established
  TCP connection (ClientHello → ServerHello+Certificate → ClientKeyExchange+
  Finished → Finished), with the server burning an RSA private operation and
  the client an RSA public operation (both booked as CPU *and* added
  latency),
* **bulk crypto**: every byte sent/received costs AES time on the endpoint.

The byte stream itself is carried in the clear inside the simulation — the
encryption is represented by CPU/latency costs plus fresh ``content_tag``
values, which is what the traffic-analysis modules observe.
"""

from __future__ import annotations


from ..crypto import DEFAULT_COSTS, CryptoCostModel
from .tcp import TcpConnection, TcpError, TcpListener, TcpStack

__all__ = ["SslConnection", "SslStack"]

CLIENT_HELLO_BYTES = 256
SERVER_HELLO_BYTES = 3200  # certificate chain dominates
CLIENT_KEX_BYTES = 320
FINISHED_BYTES = 64


class SslConnection:
    """A TLS session bound to an underlying :class:`TcpConnection`."""

    def __init__(
        self,
        conn: TcpConnection,
        is_server: bool,
        costs: CryptoCostModel = DEFAULT_COSTS,
    ):
        self.conn = conn
        self.is_server = is_server
        self.costs = costs
        self.sim = conn.sim
        self.host = conn.host
        self.handshake_done = False

    # -- handshake -----------------------------------------------------------
    def handshake(self):
        """Process generator: run the TLS handshake flights.

        Usage: ``yield from ssl_conn.handshake()``.
        """
        if self.is_server:
            yield from self._server_handshake()
        else:
            yield from self._client_handshake()
        self.handshake_done = True
        return self

    def _client_handshake(self):
        self.conn.send(b"\x01" * CLIENT_HELLO_BYTES)
        yield from self.conn.recv_exactly(SERVER_HELLO_BYTES)
        # Verify cert + encrypt pre-master secret: RSA public op.
        cpu = self.costs.tls_client_handshake_cpu_s()
        self.host.cpu.consume(cpu)
        yield self.sim.timeout(cpu)
        self.conn.send(b"\x02" * (CLIENT_KEX_BYTES + FINISHED_BYTES))
        yield from self.conn.recv_exactly(FINISHED_BYTES)

    def _server_handshake(self):
        yield from self.conn.recv_exactly(CLIENT_HELLO_BYTES)
        self.conn.send(b"\x03" * SERVER_HELLO_BYTES)
        yield from self.conn.recv_exactly(CLIENT_KEX_BYTES + FINISHED_BYTES)
        # Decrypt pre-master secret: RSA private op — the expensive step.
        cpu = self.costs.tls_handshake_cpu_s()
        self.host.cpu.consume(cpu)
        yield self.sim.timeout(cpu)
        self.conn.send(b"\x04" * FINISHED_BYTES)

    # -- bulk data ------------------------------------------------------------
    def send(self, data: bytes):
        """Process generator: encrypt (cost) then transmit."""
        if not self.handshake_done:
            raise TcpError("SSL send before handshake")
        cost = self.costs.aes(len(data))
        self.host.cpu.consume(cost)
        yield self.sim.timeout(cost)
        self.conn.send(data)

    def recv(self, n: int):
        """Process generator: receive then decrypt (cost). Returns bytes."""
        data = yield self.conn.recv(n)
        if data:
            cost = self.costs.aes(len(data))
            self.host.cpu.consume(cost)
            yield self.sim.timeout(cost)
        return data

    def recv_exactly(self, n: int):
        """Process generator: exactly ``n`` bytes, decrypted."""
        data = yield from self.conn.recv_exactly(n)
        cost = self.costs.aes(len(data))
        self.host.cpu.consume(cost)
        yield self.sim.timeout(cost)
        return data

    def close(self) -> None:
        """Close the underlying TCP connection."""
        self.conn.close()


class SslStack:
    """Convenience wrapper pairing a :class:`TcpStack` with TLS sessions."""

    def __init__(self, tcp: TcpStack, costs: CryptoCostModel = DEFAULT_COSTS):
        self.tcp = tcp
        self.costs = costs

    def connect(self, remote_ip, remote_port: int):
        """Process generator: TCP connect + TLS handshake."""
        conn = yield self.tcp.connect(remote_ip, remote_port)
        ssl_conn = SslConnection(conn, is_server=False, costs=self.costs)
        yield from ssl_conn.handshake()
        return ssl_conn

    def accept_on(self, listener: TcpListener):
        """Process generator: accept a TCP connection + TLS handshake."""
        conn = yield listener.accept()
        ssl_conn = SslConnection(conn, is_server=True, costs=self.costs)
        yield from ssl_conn.handshake()
        return ssl_conn
