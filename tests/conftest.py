"""Suite-wide fixtures.

Packet ``uid``/``content_tag`` sequences come from module-global counters
(:mod:`repro.net.packet`); without a per-test reset the identities any test
observes would depend on how many packets every earlier test created —
i.e. on test execution order and selection.  The autouse fixture pins both
sequences to start at 1 for every test.
"""

import pytest

from repro.net.packet import reset_identity_counters


@pytest.fixture(autouse=True)
def _deterministic_packet_identities():
    """Make uid/content_tag sequences deterministic per test."""
    reset_identity_counters()
    yield
