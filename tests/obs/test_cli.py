"""The ``python -m repro.obs`` CLI: contract, demo, summarize."""

import json

import pytest

from repro.obs import contract_names, format_contract_table
from repro.obs.__main__ import main


def test_contract_prints_the_table(capsys):
    assert main(["contract"]) == 0
    out = capsys.readouterr().out
    assert out.strip() == format_contract_table()


@pytest.fixture(scope="module")
def demo_exports(tmp_path_factory):
    """One demo run exporting all three formats (shared across tests)."""
    d = tmp_path_factory.mktemp("obs-cli")
    paths = {k: str(d / f"snap.{k}") for k in ("json", "csv", "prom")}
    rc = main([
        "demo", "--horizon", "2", "--period", "0",
        "--json", paths["json"], "--csv", paths["csv"], "--prom", paths["prom"],
    ])
    assert rc == 0
    return paths


def test_demo_prints_summary(capsys, demo_exports):
    main(["demo", "--horizon", "2", "--period", "0"])
    out = capsys.readouterr().out
    assert "observability summary @" in out
    assert "app.echo_rtt_s" in out
    assert "mic.establish" in out


def test_demo_json_export_is_contracted(demo_exports):
    doc = json.loads(open(demo_exports["json"], encoding="utf-8").read())
    assert doc["sim_time_s"] == pytest.approx(2.0)
    names = {s["name"] for s in doc["samples"]}
    names |= {h["name"] for h in doc["histograms"]}
    names |= {r["name"] for r in doc["spans"]}
    assert names <= set(contract_names())
    assert any(r["name"] == "mic.connect" for r in doc["spans"])


def test_demo_csv_and_prom_exports(demo_exports):
    csv = open(demo_exports["csv"], encoding="utf-8").read().splitlines()
    assert csv[0] == "kind,name,labels,field,value"
    assert any(ln.startswith("counter,switch.rule.packets,") for ln in csv)
    prom = open(demo_exports["prom"], encoding="utf-8").read()
    assert "# TYPE switch_rule_packets counter" in prom
    assert "app_echo_rtt_s_count" in prom


def test_summarize_round_trips(capsys, demo_exports):
    assert main(["summarize", demo_exports["json"]]) == 0
    out = capsys.readouterr().out
    assert "snapshot @ t=2.000000s" in out
    assert "switch.rule.packets" in out
    assert "span mic.connect" in out
