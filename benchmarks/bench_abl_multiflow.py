"""Abl-2: multiple m-flows vs size-based traffic analysis.

DESIGN.md question: how much does slicing a channel over F m-flows degrade a
size-estimating observer at the initiator's edge switch?  The paper argues
the attack weakens because no single flow carries the channel's true volume.
"""

from repro.attacks import ObservationPoint, estimate_flow_sizes, size_estimate_error
from repro.bench import FigureResult, Testbed, open_mic, run_process
from repro.workloads.iperf import measure_transfer

PAYLOAD = 60_000


def observed_error(n_flows: int, seed: int = 0) -> float:
    bed = Testbed.create(seed=seed + n_flows)
    point = ObservationPoint(bed.net, "p0e0")  # h1's edge switch
    session = run_process(
        bed.net, open_mic(bed, "h1", "h16", 25000, n_flows=n_flows, n_mns=3)
    )
    run_process(
        bed.net,
        measure_transfer(bed.net.sim, session.client, session.server, PAYLOAD),
    )
    h1_ip = str(bed.net.host("h1").ip)
    estimates = [e for e in estimate_flow_sizes(point) if e.signature[0] == h1_ip]
    return size_estimate_error(PAYLOAD, estimates)


def run_ablation(flow_counts=(1, 2, 4, 8)):
    result = FigureResult(
        "Abl-2", "size-analysis error vs m-flow count",
        x_label="n_flows", y_label="relative size error", unit="",
    )
    for f in flow_counts:
        result.add("edge observer", f, observed_error(f))
    return result


def test_abl_multiflow(benchmark, save_table):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_table("abl_multiflow", result)

    e1 = result.value("edge observer", 1)
    e4 = result.value("edge observer", 4)
    e8 = result.value("edge observer", 8)
    # One m-flow: the observer recovers the size almost exactly.
    assert e1 < 0.10
    # More m-flows: the best single-flow guess misses most of the volume.
    assert e4 > e1 and e8 > 0.4
