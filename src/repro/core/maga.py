"""M-Address Generation Algorithm (MAGA) — the reversible hash family.

The paper's collision-avoidance mechanism (Sec IV-B3) rests on hash
functions built from XOR and shift so that they are *invertible in their
last variable*: given a target hash value and random draws for the other
variables, the last variable can be solved so the full tuple lands in the
target value class.  Equation (1) of the paper:

    f(x, y, z) = [(x⊕A0)>>A1] ⊕ [(x⊕A2)<<A3]
               ⊕ [(y⊕B0)>>B1] ⊕ [(y⊕B2)<<B3]
               ⊕ [(z⊕C0)>>C1]

with the inverse (2) solving for z.  As printed, the construction loses the
top ``C1`` bits of ``(z⊕C0)`` to the right shift, so the printed inverse
only round-trips when hash values are confined to ``W−C1`` bits.  We
implement exactly that masked construction: a :class:`ReversibleHash` over
fixed-width unsigned variables whose value space is ``solve_width − shift``
bits, generalized to any number of variables of heterogeneous widths (the
paper needs the 3-variable ``f``, the 4-variable ``F`` and the 2-variable
split ``h`` that realizes ``g``).

Every Mimic Node gets an independently drawn parameterization
(:meth:`ReversibleHash.random`), which is the paper's defence against an
adversary reconstructing a single global hash function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["ReversibleHash", "HashParams"]


def _mask(bits: int) -> int:
    return (1 << bits) - 1


@dataclass(frozen=True)
class HashParams:
    """Per-variable mixing parameters (A0, A1, A2, A3 in the paper)."""

    xor_a: int
    shr: int
    xor_b: int
    shl: int


@dataclass(frozen=True)
class ReversibleHash:
    """An n-variable XOR/shift hash invertible in its last variable.

    ``widths[i]`` is the bit width of variable ``i``; the last variable is
    the solvable one.  ``shift`` is the paper's C1: the right shift applied
    to the solvable variable, which determines the value space
    ``value_bits = widths[-1] - shift``.
    """

    widths: tuple[int, ...]
    params: tuple[HashParams, ...]  # one per non-solvable variable
    solve_xor: int  # C0
    shift: int  # C1

    def __post_init__(self) -> None:
        if len(self.widths) < 1:
            raise ValueError("need at least one variable")
        if len(self.params) != len(self.widths) - 1:
            raise ValueError("need params for every non-solvable variable")
        if not 0 < self.shift < self.widths[-1]:
            raise ValueError("shift must be in (0, solve_width)")
        for w in self.widths:
            if w < 2:
                raise ValueError("variable width must be >= 2 bits")

    # ------------------------------------------------------------------
    @property
    def n_vars(self) -> int:
        """Number of variables the hash takes."""
        return len(self.widths)

    @property
    def solve_width(self) -> int:
        """Bit width of the solvable (last) variable."""
        return self.widths[-1]

    @property
    def value_bits(self) -> int:
        """Width of the hash value space (W − C1)."""
        return self.solve_width - self.shift

    @property
    def n_values(self) -> int:
        """Size of the hash value space."""
        return 1 << self.value_bits

    # ------------------------------------------------------------------
    def _free_part(self, i: int, v: int) -> int:
        """Mixing contribution of non-solvable variable ``i``."""
        w = self.widths[i]
        p = self.params[i]
        v &= _mask(w)
        part = ((v ^ p.xor_a) >> p.shr) ^ (((v ^ p.xor_b) << p.shl) & _mask(w))
        return part & _mask(self.value_bits)

    def _free_mix(self, free_vars: Sequence[int]) -> int:
        acc = 0
        for i, v in enumerate(free_vars):
            acc ^= self._free_part(i, v)
        return acc

    def value(self, *variables: int) -> int:
        """Hash value of a full tuple, in ``[0, 2**value_bits)``."""
        if len(variables) != self.n_vars:
            raise ValueError(f"expected {self.n_vars} variables")
        *free, z = variables
        z_part = ((z ^ self.solve_xor) & _mask(self.solve_width)) >> self.shift
        return (self._free_mix(free) ^ z_part) & _mask(self.value_bits)

    def solve(self, target: int, *free_vars: int, low_bits: int = 0) -> int:
        """The paper's inverse: the last variable making the tuple hash to
        ``target`` given the other variables.

        The right shift in the hash discards the solved variable's low
        ``shift`` bits, so *any* value works there — ``low_bits`` fills
        them.  The paper's printed inverse implicitly fixes them (to C0's
        low bits), which makes every solved variable share constant low
        bits: an observable fingerprint.  Callers that care about
        indistinguishability must pass random ``low_bits``
        (:meth:`repro.core.collision.MnAddressSpace.draw_label` does)."""
        if not 0 <= target < self.n_values:
            raise ValueError(
                f"target {target} outside value space [0, {self.n_values})"
            )
        if len(free_vars) != self.n_vars - 1:
            raise ValueError(f"expected {self.n_vars - 1} free variables")
        if not 0 <= low_bits < (1 << self.shift):
            raise ValueError(f"low_bits needs {self.shift} bits")
        w = (target ^ self._free_mix(free_vars)) & _mask(self.value_bits)
        return (((w << self.shift) | low_bits) ^ self.solve_xor) & _mask(
            self.solve_width
        )

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        rng,
        widths: Sequence[int],
        shift: int,
    ) -> "ReversibleHash":
        """Draw an independent parameterization (one per MN)."""
        widths = tuple(widths)
        params = []
        for w in widths[:-1]:
            params.append(
                HashParams(
                    xor_a=rng.getrandbits(w),
                    shr=rng.randrange(1, max(2, w // 2)),
                    xor_b=rng.getrandbits(w),
                    shl=rng.randrange(1, max(2, w // 2)),
                )
            )
        return cls(
            widths=widths,
            params=tuple(params),
            solve_xor=rng.getrandbits(widths[-1]),
            shift=shift,
        )
