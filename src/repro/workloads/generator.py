"""Workload generators: flow arrivals and host-pair selection.

The paper's motivation names two application classes: delay-sensitive web
services and bandwidth-hungry file services.  These generators produce the
corresponding traffic mixes for the benches and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["FlowSpec", "poisson_arrivals", "pick_pairs", "dc_mix"]


@dataclass(frozen=True)
class FlowSpec:
    """One flow the generator asks the harness to run."""

    start_s: float
    src: str
    dst: str
    nbytes: int
    kind: str  # "bulk" | "rpc"


def poisson_arrivals(rng, rate_per_s: float, horizon_s: float) -> Iterator[float]:
    """Arrival times of a Poisson process on [0, horizon)."""
    if rate_per_s <= 0:
        raise ValueError("rate must be positive")
    t = 0.0
    while True:
        t += rng.expovariate(rate_per_s)
        if t >= horizon_s:
            return
        yield t


def pick_pairs(
    rng, hosts: Sequence[str], n: int, distinct_src: bool = False
) -> list[tuple[str, str]]:
    """``n`` ordered host pairs with src != dst.

    With ``distinct_src`` every pair gets a different source host (the
    shape of the paper's Fig 9(b) multi-flow experiment)."""
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    if distinct_src and n > len(hosts):
        raise ValueError("not enough hosts for distinct sources")
    pairs = []
    sources = rng.sample(list(hosts), n) if distinct_src else None
    for i in range(n):
        src = sources[i] if distinct_src else rng.choice(hosts)
        dst = rng.choice([h for h in hosts if h != src])
        pairs.append((src, dst))
    return pairs


def dc_mix(
    rng,
    hosts: Sequence[str],
    horizon_s: float,
    rpc_rate_per_s: float = 20.0,
    bulk_rate_per_s: float = 2.0,
    rpc_bytes: int = 2_000,
    bulk_bytes: int = 5_000_000,
) -> list[FlowSpec]:
    """A data-center-like mix: many small RPCs plus occasional bulk flows."""
    specs: list[FlowSpec] = []
    for t in poisson_arrivals(rng, rpc_rate_per_s, horizon_s):
        src, dst = pick_pairs(rng, hosts, 1)[0]
        specs.append(FlowSpec(t, src, dst, rpc_bytes, "rpc"))
    for t in poisson_arrivals(rng, bulk_rate_per_s, horizon_s):
        src, dst = pick_pairs(rng, hosts, 1)[0]
        specs.append(FlowSpec(t, src, dst, bulk_bytes, "bulk"))
    specs.sort(key=lambda s: s.start_s)
    return specs
