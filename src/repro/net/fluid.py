"""Fluid max-min fair bandwidth allocation.

Long-running bulk transfers (the paper's iperf measurements, Fig 9) settle at
a bandwidth-sharing fixed point rather than being interesting packet by
packet.  This module computes the classic **max-min fair** allocation by
progressive filling over the links each flow traverses.

Per-flow rate caps (e.g. a Tor relay whose AES throughput is CPU-bound) are
modeled as single-user virtual links, which keeps the water-filling loop
uniform.  The solver is exact and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Sequence

__all__ = ["FluidFlow", "FluidAllocation", "max_min_fair"]

LinkId = Hashable


@dataclass
class FluidFlow:
    """One steady-state flow over an ordered set of resources."""

    flow_id: str
    links: Sequence[LinkId]
    rate_cap_bps: Optional[float] = None


@dataclass
class FluidAllocation:
    """Solver result: per-flow rates and per-link loads."""

    rates_bps: dict[str, float]
    link_load_bps: dict[LinkId, float]
    link_capacity_bps: dict[LinkId, float]

    def rate(self, flow_id: str) -> float:
        """The allocated rate of one flow, in bits/s."""
        return self.rates_bps[flow_id]

    def utilization(self, link: LinkId) -> float:
        """Load/capacity for one link (0..1)."""
        cap = self.link_capacity_bps[link]
        return self.link_load_bps.get(link, 0.0) / cap if cap > 0 else 0.0

    def bottlenecked_links(self, tol: float = 1e-6) -> list[LinkId]:
        """Links loaded to capacity (within tolerance)."""
        return [
            l
            for l, cap in self.link_capacity_bps.items()
            if cap > 0 and self.link_load_bps.get(l, 0.0) >= cap * (1 - tol)
        ]


def max_min_fair(
    flows: Iterable[FluidFlow],
    capacities_bps: dict[LinkId, float],
) -> FluidAllocation:
    """Progressive-filling max-min fair allocation.

    Every iteration finds the most constrained resource (least remaining
    capacity per active flow), freezes its flows at the fair share, and
    repeats.  Runs in O(iterations × links); iterations ≤ number of flows.
    """
    flows = list(flows)
    ids = [f.flow_id for f in flows]
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate flow ids")

    # Effective link set: physical links plus one virtual cap-link per flow.
    capacity: dict[LinkId, float] = dict(capacities_bps)
    users: dict[LinkId, set[str]] = {l: set() for l in capacity}
    flow_links: dict[str, list[LinkId]] = {}
    for f in flows:
        resolved: list[LinkId] = []
        for l in f.links:
            if l not in capacity:
                raise KeyError(f"flow {f.flow_id} uses unknown link {l!r}")
            resolved.append(l)
        if f.rate_cap_bps is not None:
            cap_link: LinkId = ("__cap__", f.flow_id)
            capacity[cap_link] = f.rate_cap_bps
            users[cap_link] = set()
            resolved.append(cap_link)
        flow_links[f.flow_id] = resolved
        for l in resolved:
            users[l].add(f.flow_id)

    rates: dict[str, float] = {f.flow_id: 0.0 for f in flows}
    remaining: dict[LinkId, float] = dict(capacity)
    active: set[str] = {f.flow_id for f in flows if flow_links[f.flow_id]}
    # Flows traversing no links at all are unconstrained; report inf.
    for f in flows:
        if not flow_links[f.flow_id]:
            rates[f.flow_id] = float("inf")

    while active:
        # Fair share each link could still give to each of its active flows.
        bottleneck_share = float("inf")
        for l, flow_set in users.items():
            live = flow_set & active
            if not live:
                continue
            share = remaining[l] / len(live)
            if share < bottleneck_share:
                bottleneck_share = share
        if bottleneck_share == float("inf"):
            break  # no active flow uses any link (already handled above)
        # Raise every active flow by the bottleneck share.
        for fid in active:
            rates[fid] += bottleneck_share
        for l, flow_set in users.items():
            live = flow_set & active
            if live:
                remaining[l] -= bottleneck_share * len(live)
        # Freeze flows sitting on saturated links.
        saturated = {l for l in users if remaining[l] <= 1e-9 and (users[l] & active)}
        frozen = {fid for fid in active if any(l in saturated for l in flow_links[fid])}
        if not frozen:
            # Numerical safety: freeze the single most-constrained flow.
            frozen = {min(active)}
        active -= frozen

    # Aggregate physical link loads (exclude virtual cap links).
    load: dict[LinkId, float] = {}
    for f in flows:
        r = rates[f.flow_id]
        if r == float("inf"):
            continue
        for l in f.links:
            load[l] = load.get(l, 0.0) + r
    return FluidAllocation(
        rates_bps=rates,
        link_load_bps=load,
        link_capacity_bps=dict(capacities_bps),
    )
