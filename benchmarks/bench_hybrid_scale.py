"""Hybrid-mode scale benchmark: 10k+ concurrent channels on fat_tree(16).

The first entry in the repo's perf trajectory.  A full run drives 10,000
concurrent transfers over a 1,024-host fat-tree in hybrid fidelity (the
hash-sampled packet subset rides real TCP; everything else advances as
fluid rates) and records wall time, peak RSS, and channels/second to
``benchmarks/results/BENCH_7.json``.  An Observer snapshot of the same run
is exported next to it so ``python -m repro.obs summarize`` works on
hybrid runs end to end.

Set ``BENCH_QUICK=1`` for the CI-sized slice: fat_tree(8), 2,000 channels.
"""

import json
import os
import pathlib
import resource
import time

from repro.obs.exporters import to_json
from repro.bench import run_hybrid_scenario

QUICK = bool(os.environ.get("BENCH_QUICK"))
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

K = 8 if QUICK else 16
CHANNELS = 2_000 if QUICK else 10_000
PAYLOAD_BYTES = 500_000 if QUICK else 1_000_000
SAMPLE_RATE = 0.002
SEED = 7
# Generous wall ceiling (CI machines vary); a full local run takes ~20s.
WALL_BUDGET_S = 120.0 if QUICK else 300.0


def test_hybrid_scale(benchmark):
    t0 = time.perf_counter()
    r = benchmark.pedantic(
        lambda: run_hybrid_scenario(
            k=K, channels=CHANNELS, payload_bytes=PAYLOAD_BYTES,
            sample_rate=SAMPLE_RATE, seed=SEED, observe=True,
            time_limit_s=120.0,
        ),
        rounds=1, iterations=1,
    )
    wall_s = time.perf_counter() - t0
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024

    # Every channel ran to completion inside the simulated-time limit.
    assert r.fluid_flows + r.packet_flows == CHANNELS
    assert r.fluid_finished == r.fluid_flows
    assert r.packet_finished == r.packet_flows
    assert r.packet_flows > 0, "sampling produced no packet-level channels"
    assert wall_s < WALL_BUDGET_S

    doc = {
        "bench": "hybrid_scale",
        "trajectory_entry": 7,
        "quick": QUICK,
        "params": {
            "k": K, "channels": CHANNELS, "payload_bytes": PAYLOAD_BYTES,
            "sample_rate": SAMPLE_RATE, "seed": SEED,
        },
        "fabric": {"hosts": r.hosts, "switches": r.switches},
        "wall_s": round(wall_s, 3),
        # process-wide peak (includes interpreter + test harness overhead)
        "peak_rss_mb": round(peak_rss_mb, 1),
        "channels_per_s": round(CHANNELS / wall_s, 1),
        "sim_time_limit_hit": r.sim_time_s >= 120.0 and (
            r.fluid_finished < r.fluid_flows or r.packet_finished < r.packet_flows
        ),
        "fluid_flows": r.fluid_flows,
        "packet_flows": r.packet_flows,
        "epochs": r.epochs,
        "resolves": r.resolves,
        "bytes_advanced": r.bytes_advanced,
        "debited_bytes": r.debited_bytes,
        "rules_installed": r.rules_installed,
        "mean_fluid_goodput_bps": r.mean_goodput_bps("fluid"),
        "mean_packet_goodput_bps": r.mean_goodput_bps("packet"),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_7.json").write_text(json.dumps(doc, indent=2) + "\n")
    snap_path = RESULTS_DIR / "hybrid_scale_snapshot.json"
    snap_path.write_text(to_json(r.observer.snapshot()) + "\n")
    print(
        f"\nhybrid scale: fat_tree({K}) {CHANNELS} channels "
        f"({r.packet_flows} packet / {r.fluid_flows} fluid) "
        f"wall={wall_s:.1f}s rss={peak_rss_mb:.0f}MB "
        f"{CHANNELS / wall_s:.0f} chan/s epochs={r.epochs}"
    )
