"""Flight recorder: bounded rings, anomaly triggers, dump discipline."""

import json

import pytest

from repro.net import FlowEntry, Match, Network, Output, linear
from repro.obs import (
    ANOMALY_TRIGGERS,
    DEFAULT_TRIGGERS,
    FlightRecorder,
    JourneyRecorder,
)


def _wired(seed=5, install=True):
    """linear(2): h1 -> s1 -> s2 -> h2, optionally with the route installed."""
    net = Network(linear(2, hosts_per_switch=1), seed=seed)
    h1, h2 = net.host("h1"), net.host("h2")
    if install:
        net.switch("s1").table.install(
            FlowEntry(Match(ip_dst=h2.ip), [Output(net.port("s1", "s2"))])
        )
        net.switch("s2").table.install(
            FlowEntry(Match(ip_dst=h2.ip), [Output(net.port("s2", "h2"))])
        )
    h2.bind("tcp", 80, lambda host, p: None)
    return net, h1, h2


def _attach(net, **kwargs):
    flight = FlightRecorder(**kwargs)
    JourneyRecorder.attach(net, flight=flight)
    return flight


def test_rings_stay_bounded_at_capacity():
    net, h1, h2 = _wired()
    flight = _attach(net, capacity=3)
    for i in range(20):
        h1.send_packet(h1.make_packet(h2.ip, sport=i + 1, dport=80,
                                      payload_size=64))
    net.run()
    assert flight.locations()  # hosts, switches and channels all retained
    assert {"h1", "s1", "s2", "h2"} <= set(flight.locations())
    for where in flight.locations():
        assert 1 <= len(flight.ring(where)) <= 3
    # the ring keeps the *latest* events: h1's last tx is the 20th packet
    assert flight.ring("h1")[-1].detail["size"] >= 64
    assert flight.dumps == []  # healthy run


def test_drop_trigger_dumps_with_context():
    net, h1, h2 = _wired()
    flight = _attach(net, capacity=8)
    # one healthy delivery first, so the rings have context to snapshot
    h1.send_packet(h1.make_packet(h2.ip, sport=1, dport=80, payload_size=64))
    net.run()
    net.link_between("s1", "s2").set_up(False)
    h1.send_packet(h1.make_packet(h2.ip, sport=2, dport=80, payload_size=64))
    net.run()
    # bringing the link down dumps once per directed channel (link_down
    # trigger), then the packet sent into the dead link dumps on the drop
    down_dumps = [d for d in flight.dumps if d.trigger == "link_down"]
    assert len(down_dumps) == 2
    assert all(d.cause.kind == "link.down" for d in down_dumps)
    (dump,) = [d for d in flight.dumps if d.trigger == "drop"]
    assert dump.cause.kind == "link.drop"
    assert dump.time_s <= net.sim.now
    # the snapshot holds the events leading up to the anomaly at every
    # location, including the healthy delivery before it
    assert any(e.kind == "host.rx" for e in dump.events["h2"])
    doc = dump.to_dict()
    json.dumps(doc)  # JSON-serializable as-is
    assert doc["trigger"] == "drop"
    assert doc["cause"]["kind"] == "link.drop"


def test_ttl_trigger():
    net, h1, h2 = _wired()
    flight = _attach(net)
    p = h1.make_packet(h2.ip, sport=1, dport=80, payload_size=64)
    p.ttl = 1
    h1.send_packet(p)
    net.run()
    assert [d.trigger for d in flight.dumps] == ["ttl_expired"]
    assert flight.dumps[0].cause.kind == "switch.ttl_expired"


def test_queue_depth_trigger_needs_a_threshold():
    # threshold None (default): a burst builds backlog but never dumps
    net, h1, h2 = _wired()
    flight = _attach(net)
    for i in range(6):
        h1.send_packet(h1.make_packet(h2.ip, sport=i + 1, dport=80,
                                      payload_size=1000))
    net.run()
    assert flight.dumps == []

    # with a 1-byte threshold the same burst dumps on the queued packets
    net, h1, h2 = _wired()
    flight = _attach(net, queue_threshold_bytes=1)
    for i in range(6):
        h1.send_packet(h1.make_packet(h2.ip, sport=i + 1, dport=80,
                                      payload_size=1000))
    net.run()
    assert flight.dumps
    assert all(d.trigger == "queue_depth" for d in flight.dumps)
    assert all(d.cause.detail["backlog_bytes"] >= 1 for d in flight.dumps)


def test_miss_is_opt_in():
    # default triggers: a table miss is recorded but never dumps
    net, h1, h2 = _wired(install=False)
    flight = _attach(net)
    h1.send_packet(h1.make_packet(h2.ip, sport=1, dport=80, payload_size=64))
    net.run()
    assert any(e.kind == "switch.miss" for e in flight.ring("s1"))
    assert flight.dumps == []

    # opted in, the same scenario dumps
    net, h1, h2 = _wired(install=False)
    flight = _attach(net, triggers=DEFAULT_TRIGGERS | {"miss"})
    h1.send_packet(h1.make_packet(h2.ip, sport=1, dport=80, payload_size=64))
    net.run()
    assert [d.trigger for d in flight.dumps] == ["miss"]


def test_max_dumps_bounds_an_anomaly_storm():
    net, h1, h2 = _wired()
    flight = _attach(net, max_dumps=2)
    net.link_between("s1", "s2").set_up(False)
    for i in range(5):
        h1.send_packet(h1.make_packet(h2.ip, sport=i + 1, dport=80,
                                      payload_size=64))
    net.run()
    # the two link_down dumps (one per directed channel) exhaust the
    # budget; all five drops are suppressed
    assert len(flight.dumps) == 2
    assert [d.trigger for d in flight.dumps] == ["link_down", "link_down"]
    assert flight.dumps_suppressed == 5
    assert len(flight) == 2


def test_constructor_validation():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)
    with pytest.raises(ValueError):
        FlightRecorder(triggers=["drop", "nonsense"])
    # every contracted trigger name is accepted
    FlightRecorder(triggers=[t.name for t in ANOMALY_TRIGGERS])


def test_default_triggers_match_the_contract():
    assert DEFAULT_TRIGGERS == {
        t.name for t in ANOMALY_TRIGGERS if t.default
    }
    assert "miss" not in DEFAULT_TRIGGERS
