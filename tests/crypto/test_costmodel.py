"""Unit tests for the crypto timing model."""

import pytest

from repro.crypto import DEFAULT_COSTS, CryptoCostModel


def test_aes_scales_linearly_with_bytes():
    m = CryptoCostModel()
    c1 = m.aes(1000)
    c2 = m.aes(2000)
    assert c2 - c1 == pytest.approx(1000 * m.aes_per_byte_s)


def test_aes_has_per_op_overhead():
    m = CryptoCostModel()
    assert m.aes(0) == pytest.approx(m.aes_op_overhead_s)


def test_aes_rejects_negative():
    with pytest.raises(ValueError):
        DEFAULT_COSTS.aes(-1)


def test_onion_layers_multiplies():
    m = CryptoCostModel()
    assert m.onion_layers(100, 3) == pytest.approx(3 * m.aes(100))
    assert m.onion_layers(100, 0) == 0.0
    with pytest.raises(ValueError):
        m.onion_layers(100, -1)


def test_rsa_dominates_tls_server_handshake():
    m = CryptoCostModel()
    assert m.tls_handshake_cpu_s() > m.rsa_private_op_s
    assert m.tls_handshake_cpu_s() > 10 * m.tls_client_handshake_cpu_s()


def test_tor_extend_is_expensive():
    m = CryptoCostModel()
    # One circuit extension costs the relay around a millisecond or more —
    # the source of Tor's setup-time growth in Fig 7.
    assert m.tor_circuit_extend_cpu_s() >= 1e-3


def test_aes_throughput_is_inverse_of_per_byte_cost():
    m = CryptoCostModel(aes_per_byte_s=2e-9)
    assert m.aes_throughput_Bps() == pytest.approx(5e8)


def test_calibration_orders_of_magnitude():
    """Sanity: the defaults sit in realistic 2015-Xeon ranges."""
    m = DEFAULT_COSTS
    assert 1e8 < m.aes_throughput_Bps() < 5e9  # 100 MB/s .. 5 GB/s
    assert 1e-4 < m.rsa_private_op_s < 1e-2
    assert m.rsa_public_op_s < m.rsa_private_op_s / 10
