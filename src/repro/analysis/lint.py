"""The pluggable lint engine: ``python -m repro.analysis lint [paths...]``.

A discrete-event simulation of an anonymity system is only trustworthy
when two properties hold *by construction*: one seed gives exactly one
trace, and plaintext endpoint identities never escape the sanctioned
rewrite boundaries.  The engine runs every rule in the
:mod:`repro.analysis.rules` registry — determinism rules, the FlowTable
encapsulation boundary, and the :mod:`~repro.analysis.taint` anonymity
pass — over the AST of each file (the linted code is never imported).

Suppression is layered, strictest first:

* ``# lint: allow(rule-a, rule-b)`` on the offending line;
* ``# lint: file-allow(rule)`` anywhere in a file (whole-file opt-out,
  for e.g. the benchmark package's wall-clock timing);
* a committed **baseline** (:mod:`repro.analysis.baseline`) of
  grandfathered findings, each with a one-line justification — stale
  entries fail the run, so the baseline tracks the code exactly.

``--explain <rule>`` prints a rule's rationale and worked example;
``--format sarif`` emits SARIF 2.1.0 for code-host ingestion.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path, PurePath
from typing import Iterable, Optional, Sequence

from .baseline import Baseline
from .reporters import format_text, sarif_text
from .rules import Finding, LintContext, Rule, all_rules, explain, rule_ids
from .taint import TaintProject, collect_project

__all__ = [
    "RULES",
    "Finding",
    "lint_source",
    "lint_paths",
    "LintRun",
    "run_lint",
    "main",
]

_PRAGMA = re.compile(r"#\s*lint:\s*allow\(([\w, -]+)\)")
_FILE_PRAGMA = re.compile(r"#\s*lint:\s*file-allow\(([\w, -]+)\)")


def _rules_map() -> dict[str, str]:
    return {rule.id: rule.summary for rule in all_rules()}


class _RulesView(dict):
    """Lazy ``RULES`` mapping (kept for API compatibility with PR 1)."""

    def _fill(self) -> None:
        if not super().__len__():
            super().update(_rules_map())

    def __getitem__(self, key):  # pragma: no cover - trivial delegation
        self._fill()
        return super().__getitem__(key)

    def __iter__(self):
        self._fill()
        return super().__iter__()

    def __len__(self):
        self._fill()
        return super().__len__()

    def __contains__(self, key):
        self._fill()
        return super().__contains__(key)


#: rule id -> one-line summary (back-compat alias of the registry)
RULES = _RulesView()


def module_name_for(path: str) -> Optional[str]:
    """Dotted module of a source path, trimmed at the last ``src`` segment.

    ``/repo/src/repro/obs/exporters.py`` → ``repro.obs.exporters``;
    paths outside an ``src`` layout fall back to any ``repro`` segment;
    anything else returns None (relative imports stay unresolved).
    """
    parts = list(PurePath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    anchor = None
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "src":
            anchor = i + 1
            break
    if anchor is None:
        for i, part in enumerate(parts):
            if part == "repro":
                anchor = i
                break
    if anchor is None or anchor >= len(parts):
        return None
    mod_parts = parts[anchor:]
    if mod_parts and mod_parts[-1] == "__init__":
        mod_parts = mod_parts[:-1]
    return ".".join(mod_parts) or None


def _allowed_rules(pragma_match: Optional[re.Match]) -> set[str]:
    if not pragma_match:
        return set()
    return {part.strip() for part in pragma_match.group(1).split(",")}


def _file_allowed(source: str) -> set[str]:
    """Rules suppressed file-wide via ``# lint: file-allow(...)``."""
    allowed: set[str] = set()
    for m in _FILE_PRAGMA.finditer(source):
        allowed |= _allowed_rules(m)
    return allowed


def _line_allowed(line_text: str, rule: str) -> bool:
    allowed = _allowed_rules(_PRAGMA.search(line_text))
    return rule in allowed or "all" in allowed


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
    project: Optional[TaintProject] = None,
) -> list[Finding]:
    """Run the registry over one module's source; findings line-ordered.

    Per-line and per-file pragmas are applied here; baseline filtering is
    the caller's concern (:func:`run_lint`).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, "parse-error",
                        f"could not parse: {exc.msg}")]
    if module is None:
        module = module_name_for(path)
    ctx = LintContext(
        path=path, source=source, tree=tree,
        lines=source.splitlines(), module=module, project=project,
    )
    file_allowed = _file_allowed(source)
    findings: list[Finding] = []
    for rule in (rules if rules is not None else all_rules()):
        if rule.id in file_allowed or "all" in file_allowed:
            continue
        for finding in rule.check(ctx):
            if _line_allowed(ctx.line_text(finding.line), finding.rule):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def _collect_files(paths: Iterable[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        files.extend(sorted(root.rglob("*.py")) if root.is_dir() else [root])
    return files


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
) -> list[Finding]:
    """Lint every ``*.py`` file under the given files/directories.

    Runs in two phases: first the ``# taint:`` annotations of *all* files
    are collected into one :class:`TaintProject` (so a sink defined in
    ``repro.obs`` is honoured everywhere), then each file is linted.
    """
    files = _collect_files(paths)
    sources = [(str(f), f.read_text(encoding="utf-8")) for f in files]
    project = collect_project(sources)
    findings: list[Finding] = []
    for file_path, text in sources:
        findings.extend(
            lint_source(text, file_path, rules=rules, project=project)
        )
    return findings


class LintRun:
    """Outcome of one engine run: findings split against the baseline."""

    def __init__(self, findings, suppressed, stale, baseline):
        self.findings: list[Finding] = findings
        self.suppressed: list[Finding] = suppressed
        self.stale = stale
        self.baseline: Optional[Baseline] = baseline

    @property
    def ok(self) -> bool:
        """True when nothing unsuppressed was found and nothing is stale."""
        return not self.findings and not self.stale


def run_lint(
    paths: Iterable[str],
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintRun:
    """Lint paths and apply a baseline; the engine's programmatic entry."""
    files = _collect_files(paths)
    sources = [(str(f), f.read_text(encoding="utf-8")) for f in files]
    project = collect_project(sources)
    lines_by_path: dict[str, list[str]] = {
        p: text.splitlines() for p, text in sources
    }
    raw: list[Finding] = []
    for file_path, text in sources:
        raw.extend(lint_source(text, file_path, rules=rules, project=project))
    paired = [
        (f, lines_by_path[f.path][f.line - 1]
         if 0 < f.line <= len(lines_by_path.get(f.path, [])) else "")
        for f in raw
    ]
    from .baseline import normalize_path

    scanned = {normalize_path(p) for p, _text in sources}
    if baseline is None:
        run = LintRun(raw, [], [], None)
    else:
        kept, suppressed, stale = baseline.apply(paired, scanned=scanned)
        run = LintRun(kept, suppressed, stale, baseline)
    run._paired = paired  # full finding/line pairs, for --update-baseline
    run._scanned = scanned  # scope of this run, for partial updates
    return run


DEFAULT_BASELINE = "lint-baseline.json"


def _resolve_baseline(arg: Optional[str]) -> Optional[Baseline]:
    """Load the baseline: explicit path, or the default when present."""
    if arg == "none":
        return None
    if arg:
        return Baseline.load(arg)
    default = Path(DEFAULT_BASELINE)
    if default.exists():
        return Baseline.load(default)
    return None


def build_parser() -> argparse.ArgumentParser:
    """The `lint` subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis lint",
        description="pluggable determinism + anonymity lint for the tree",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE} when present; "
             "'none' disables)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to cover exactly the current findings "
             "(new entries get empty notes; stale entries expire)",
    )
    parser.add_argument(
        "--format", choices=("text", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", metavar="PATH",
        help="write the report here instead of stdout",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--explain", metavar="RULE",
        help="print one rule's rationale and example, then exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rule ids and summaries, then exit",
    )
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; exit 1 on findings or stale baseline, 2 on usage."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:26s} {rule.severity:8s} {rule.summary}")
        return 0
    if args.explain:
        try:
            print(explain(args.explain))
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        return 0

    rules: Optional[list[Rule]] = None
    if args.select:
        wanted = {r.strip() for r in args.select.split(",") if r.strip()}
        unknown = wanted - set(rule_ids())
        if unknown:
            print(f"error: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [r for r in all_rules() if r.id in wanted]

    try:
        if (args.update_baseline and args.baseline
                and args.baseline != "none"
                and not Path(args.baseline).exists()):
            baseline = None  # creating a fresh baseline at that path
        else:
            baseline = _resolve_baseline(args.baseline)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        run = run_lint(args.paths, baseline=baseline, rules=rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE
        base = baseline if baseline is not None else Baseline()
        base.updated(run._paired, scanned=run._scanned).save(target)
        print(f"baseline written to {target} "
              f"({len(run.findings)} new, {len(run.stale)} expired)")
        return 0

    report = (
        sarif_text(run.findings) if args.format == "sarif"
        else format_text(run.findings, suppressed=len(run.suppressed),
                         stale=run.stale)
    )
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        if args.format == "sarif":
            # keep the terminal summary even when SARIF goes to a file
            print(format_text(run.findings, suppressed=len(run.suppressed),
                              stale=run.stale))
    else:
        print(report)
    return 0 if run.ok else 1


if __name__ == "__main__":
    sys.exit(main())
