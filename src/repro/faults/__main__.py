"""CLI for the fault-injection layer.

``python -m repro.faults run`` executes the seeded chaos scenario on the
4-ary fat-tree — link flaps, a parked flow, a switch crash/resync, and a
flow-mod loss window — and prints the human-readable resilience scorecard
(plus the fault timeline with ``--timeline``).

``python -m repro.faults scorecard`` runs the same scenario and prints the
deterministic JSON scorecard, optionally writing it to a file (``-o``) —
the CI artifact format.
"""

from __future__ import annotations

import argparse
import sys

from .chaos import run_chaos
from .scorecard import format_scorecard, scorecard_json


def _run(args: argparse.Namespace):
    sanitizer = None
    if getattr(args, "sanitize", False):
        from ..analysis.sanitizer import SimSanitizer

        sanitizer = SimSanitizer()
    card, dep = run_chaos(
        seed=args.seed,
        n_channels=args.channels,
        probe_period_s=args.probe_period,
        detection_latency_s=args.detection_latency,
        sanitizer=sanitizer,
        strategy=args.strategy,
        shards=args.shards,
    )
    return card, dep, sanitizer


def _sanitizer_status(sanitizer) -> int:
    """Print the sanitizer report (to stderr); exit code contribution."""
    if sanitizer is None:
        return 0
    print(sanitizer.report(), file=sys.stderr)
    return 1 if sanitizer.findings else 0


def _cmd_run(args: argparse.Namespace) -> int:
    card, dep, sanitizer = _run(args)
    if args.timeline:
        print("fault timeline:")
        for at_s, desc in [(e["at_s"], e["event"])
                           for e in card["faults"]["timeline"]]:
            print(f"  {at_s:8.3f}s  {desc}")
        print()
    print(format_scorecard(card))
    rc = 0 if card["repair"]["parked_remaining"] == 0 else 1
    return max(rc, _sanitizer_status(sanitizer))


def _cmd_scorecard(args: argparse.Namespace) -> int:
    card, _dep, sanitizer = _run(args)
    text = scorecard_json(card)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return _sanitizer_status(sanitizer)


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=0, help="scenario seed")
    p.add_argument("--channels", type=int, default=3,
                   help="number of mimic channels (default 3)")
    p.add_argument("--probe-period", type=float, default=0.2,
                   help="seconds between availability probes")
    p.add_argument("--detection-latency", type=float, default=0.002,
                   help="failure-detection latency in seconds")
    from ..anonymity import STRATEGIES

    p.add_argument("--strategy", default="mic", choices=sorted(STRATEGIES),
                   help="anonymity strategy the controller runs (default mic)")
    p.add_argument("--sanitize", action="store_true",
                   help="attach the race/determinism sanitizer; its report "
                        "goes to stderr and findings fail the run")
    p.add_argument("--shards", type=int, default=0,
                   help="run the sharded control plane with N controller "
                        "shards (>= 2 adds a shard-crash fault and a "
                        "controlplane scorecard section; 0 = plain MC)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Deterministic fault injection and the resilience scorecard.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run the chaos scenario, print the scorecard")
    _add_common(p_run)
    p_run.add_argument("--timeline", action="store_true",
                       help="also print the fault timeline")
    p_run.set_defaults(fn=_cmd_run)

    p_card = sub.add_parser("scorecard",
                            help="run the scenario, print the JSON scorecard")
    _add_common(p_card)
    p_card.add_argument("-o", "--output", help="write JSON here instead of stdout")
    p_card.set_defaults(fn=_cmd_scorecard)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
