"""The Strategy extraction is behavior-preserving, byte for byte.

The goldens under ``tests/data/`` were generated from the pre-refactor
``MimicController`` (compile/draw/decoy logic still inlined).  The ``mic``
strategy must reproduce them exactly: every compiled intent, every drawn
address, and the whole chaos scorecard.
"""

from repro.faults import run_chaos
from repro.faults.scorecard import scorecard_json

from tests.anonymity.helpers import (
    INTENTS_GOLDEN,
    SCORECARD_GOLDEN,
    establish_canonical,
    intent_snapshot,
    reset_id_counters,
    snapshot_json,
)


def test_mic_intents_byte_identical_to_pre_refactor_golden():
    dep, _grants = establish_canonical()
    assert snapshot_json(intent_snapshot(dep)) == INTENTS_GOLDEN.read_text(), (
        "compiled intents diverged from the pre-refactor golden — the "
        "extraction is supposed to be behavior-preserving; if the change "
        "is intended, regenerate via tests.anonymity.helpers.write_goldens"
    )


def test_mic_intents_stable_across_reruns():
    dep1, _ = establish_canonical()
    snap1 = snapshot_json(intent_snapshot(dep1))
    dep2, _ = establish_canonical()
    assert snap1 == snapshot_json(intent_snapshot(dep2))


def test_chaos_scorecard_byte_identical_to_pre_refactor_golden():
    reset_id_counters()
    card, _dep = run_chaos(seed=0)
    assert scorecard_json(card) + "\n" == SCORECARD_GOLDEN.read_text(), (
        "chaos scorecard diverged from the pre-refactor golden (seed 0)"
    )
