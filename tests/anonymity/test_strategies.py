"""Behavior of the three bundled strategies and the registry."""

import pytest

from repro.anonymity import (
    STRATEGIES,
    FrvmMultiplex,
    MicRewrite,
    TarnHopping,
    format_strategy_table,
    get_strategy,
)

from tests.anonymity.helpers import establish_canonical


def _interior_addrs(plan):
    """Forward-direction addresses excluding the pinned entry/delivery."""
    return tuple((a.src_ip, a.sport, a.dst_ip, a.dport, a.mpls)
                 for a in plan.fwd_addrs[1:-1])


# -- registry ------------------------------------------------------------

def test_registry_has_the_three_bundled_strategies():
    assert {"mic", "tarn", "frvm"} <= set(STRATEGIES)
    assert isinstance(get_strategy("mic"), MicRewrite)
    assert isinstance(get_strategy("tarn"), TarnHopping)
    assert isinstance(get_strategy("frvm"), FrvmMultiplex)


def test_get_strategy_passes_instances_through_and_rejects_unknown():
    inst = TarnHopping(period_s=0.5)
    assert get_strategy(inst) is inst
    with pytest.raises(ValueError, match="unknown"):
        get_strategy("onion")


def test_strategy_table_has_one_row_per_registered_strategy():
    table = format_strategy_table()
    for name in STRATEGIES:
        assert f"`{name}`" in table


# -- tarn: timed rotation ------------------------------------------------

def test_tarn_rotation_redraws_interior_but_keeps_pins():
    dep, grants = establish_canonical(
        mic_kwargs={"strategy": TarnHopping(period_s=1.0)})
    plan0 = dep.mic.channels[1].flows[0]
    before_interior = _interior_addrs(plan0)
    entry_before = plan0.fwd_addrs[0]
    delivery_before = plan0.fwd_addrs[-1]

    dep.run_for(3.0)

    strat = dep.mic.strategy
    assert strat.rotations_completed > 0
    assert strat.rotation_installs > 0
    plan1 = dep.mic.channels[1].flows[0]
    assert _interior_addrs(plan1) != before_interior
    # Entry and delivery stay pinned: both endpoints' sockets survive hops.
    a0, a1 = plan1.fwd_addrs[0], plan1.fwd_addrs[-1]
    assert (a0.src_ip, a0.sport, a0.dst_ip, a0.dport) == (
        entry_before.src_ip, entry_before.sport,
        entry_before.dst_ip, entry_before.dport)
    assert (a1.src_ip, a1.sport, a1.dst_ip, a1.dport) == (
        delivery_before.src_ip, delivery_before.sport,
        delivery_before.dst_ip, delivery_before.dport)
    # The installed data plane matches the rotated plans exactly.
    assert dep.mic.verify().violations == []


def test_mic_strategy_never_rotates():
    dep, _ = establish_canonical()
    dep.run_for(5.0)
    assert dep.mic.strategy.rotations_completed == 0
    assert dep.mic.strategy.rotation_installs == 0


# -- frvm: multiplexed entry aliases -------------------------------------

def test_frvm_grants_k_entry_addresses_and_verifies():
    dep, grants = establish_canonical(mic_kwargs={"strategy": "frvm"})
    strat = dep.mic.strategy
    assert isinstance(strat, FrvmMultiplex) and strat.k == 3
    for grant in grants:
        for fg in grant.flows:
            assert len(fg.alt_entries) == strat.k - 1
    for ch in dep.mic.channels.values():
        for plan in ch.flows:
            assert len(plan.aliases) == strat.k - 1
            # Each alias is a distinct host-visible entry address.
            entries = {(plan.fwd_addrs[0].dst_ip, plan.fwd_addrs[0].dport)}
            entries |= {(a.dst_ip, a.dport) for a in plan.aliases}
            assert len(entries) == strat.k
    assert strat.live_aliases == sum(
        len(ch.flows) * (strat.k - 1) for ch in dep.mic.channels.values())
    assert dep.mic.verify().violations == []


def test_frvm_repair_pins_granted_aliases():
    """Aliases are host-visible; a repair must reclaim the exact same
    alias addresses or every striping client's stale lanes blackhole."""
    dep, grants = establish_canonical(mic_kwargs={"strategy": "frvm"})
    plan = dep.mic.channels[1].flows[0]
    aliases_before = tuple((a.dst_ip, a.dport) for a in plan.aliases)

    mid = len(plan.walk) // 2
    dep.net.set_link_state(plan.walk[mid - 1], plan.walk[mid], False)
    dep.run_for(2.0)
    dep.net.set_link_state(plan.walk[mid - 1], plan.walk[mid], True)
    dep.run_for(2.0)
    assert dep.mic.repairs_completed > 0

    replanned = dep.mic.channels[1].flows[0]
    assert tuple((a.dst_ip, a.dport) for a in replanned.aliases) == (
        aliases_before)
    assert grants[0].flows[0].alt_entries == aliases_before
    assert dep.mic.verify().violations == []
