"""The ``python -m repro.obs`` CLI: contract, demo, summarize."""

import json

import pytest

from repro.obs import contract_names, format_contract_table
from repro.obs.__main__ import main


def test_contract_prints_the_table(capsys):
    assert main(["contract"]) == 0
    out = capsys.readouterr().out
    assert out.strip() == format_contract_table()


@pytest.fixture(scope="module")
def demo_exports(tmp_path_factory):
    """One demo run exporting all three formats (shared across tests)."""
    d = tmp_path_factory.mktemp("obs-cli")
    paths = {k: str(d / f"snap.{k}") for k in ("json", "csv", "prom")}
    rc = main([
        "demo", "--horizon", "2", "--period", "0",
        "--json", paths["json"], "--csv", paths["csv"], "--prom", paths["prom"],
    ])
    assert rc == 0
    return paths


def test_demo_prints_summary(capsys, demo_exports):
    main(["demo", "--horizon", "2", "--period", "0"])
    out = capsys.readouterr().out
    assert "observability summary @" in out
    assert "app.echo_rtt_s" in out
    assert "mic.establish" in out


def test_demo_json_export_is_contracted(demo_exports):
    doc = json.loads(open(demo_exports["json"], encoding="utf-8").read())
    assert doc["sim_time_s"] == pytest.approx(2.0)
    names = {s["name"] for s in doc["samples"]}
    names |= {h["name"] for h in doc["histograms"]}
    names |= {r["name"] for r in doc["spans"]}
    assert names <= set(contract_names())
    assert any(r["name"] == "mic.connect" for r in doc["spans"])


def test_demo_csv_and_prom_exports(demo_exports):
    csv = open(demo_exports["csv"], encoding="utf-8").read().splitlines()
    assert csv[0] == "kind,name,labels,field,value"
    assert any(ln.startswith("counter,switch.rule.packets,") for ln in csv)
    prom = open(demo_exports["prom"], encoding="utf-8").read()
    assert "# TYPE switch_rule_packets counter" in prom
    assert "app_echo_rtt_s_count" in prom


def test_summarize_round_trips(capsys, demo_exports):
    assert main(["summarize", demo_exports["json"]]) == 0
    out = capsys.readouterr().out
    assert "snapshot @ t=2.000000s" in out
    assert "switch.rule.packets" in out
    assert "span mic.connect" in out


@pytest.fixture(scope="module")
def journey_exports(tmp_path_factory):
    """One journey run exporting the dump and the Perfetto trace."""
    d = tmp_path_factory.mktemp("obs-journey")
    paths = {
        "dump": str(d / "journeys.json"),
        "perfetto": str(d / "trace.json"),
    }
    rc = main([
        "journey", "--horizon", "5", "--decoys", "2",
        "--dump", paths["dump"], "--perfetto", paths["perfetto"],
    ])
    assert rc == 0
    return paths


def test_journey_prints_hop_table(capsys, journey_exports):
    main(["journey", "--horizon", "5", "--decoys", "0"])
    out = capsys.readouterr().out
    assert "journey dump @" in out
    assert "delivered: h16" in out
    assert "top rewrites" in out


def test_journey_dump_document(journey_exports):
    doc = json.loads(open(journey_exports["dump"], encoding="utf-8").read())
    assert doc["journeys"], "journey dump is empty"
    kinds = {e["kind"] for j in doc["journeys"] for e in j["events"]}
    assert "switch.rewrite" in kinds and "host.rx" in kinds
    # the flight recorder rode along and stayed silent on the healthy run
    assert doc["flight_dumps"] == []


def test_journey_perfetto_export_is_trace_event_json(journey_exports):
    doc = json.loads(open(journey_exports["perfetto"], encoding="utf-8").read())
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert {"X", "M", "i", "s", "f"} <= phases


def test_summarize_detects_journey_dumps(capsys, journey_exports):
    assert main(["summarize", journey_exports["dump"]]) == 0
    out = capsys.readouterr().out
    assert "journey dump @" in out
    assert "worst queue waits" in out
