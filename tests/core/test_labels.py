"""Unit and property tests for the MPLS label-space partition."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.labels import LabelSpace, LabelSpaceExhausted


def make_space(seed=0, **kw):
    return LabelSpace(random.Random(seed), **kw)


class TestStructure:
    def test_split_join_roundtrip(self):
        ls = make_space()
        label = ls.join(0xABCD, 0x1234)
        assert ls.split(label) == (0xABCD, 0x1234)

    def test_join_range_checked(self):
        ls = make_space()
        with pytest.raises(ValueError):
            ls.join(1 << 16, 0)
        with pytest.raises(ValueError):
            ls.join(0, 1 << 16)

    def test_odd_mn_bits_rejected(self):
        with pytest.raises(ValueError):
            make_space(mn_bits=15)

    def test_capacity(self):
        ls = make_space(mn_shift=2)
        assert ls.capacity == 1 << (8 - 2)


class TestOwnership:
    def test_common_registered_at_birth(self):
        ls = make_space()
        assert ls.registered == 1

    def test_register_mn_unique_sids(self):
        ls = make_space()
        sids = [ls.register_mn(f"s{i}") for i in range(20)]
        assert len(set(sids)) == 20
        assert ls.common_sid not in sids

    def test_double_register_rejected(self):
        ls = make_space()
        ls.register_mn("s1")
        with pytest.raises(ValueError):
            ls.register_mn("s1")

    def test_reserved_name_rejected(self):
        with pytest.raises(ValueError):
            make_space().register_mn(LabelSpace.COMMON)

    def test_exhaustion(self):
        ls = make_space(mn_bits=8, mn_shift=2)  # 4-bit halves, shift 2 -> 4 ids
        for i in range(ls.capacity - 1):  # one taken by common
            ls.register_mn(f"s{i}")
        with pytest.raises(LabelSpaceExhausted):
            ls.register_mn("overflow")


class TestClassification:
    """Labels drawn for an owner always classify back to that owner, and
    ownership sets are disjoint by construction."""

    def test_mn_labels_classify_back(self):
        rng = random.Random(1)
        ls = make_space()
        for i in range(10):
            ls.register_mn(f"s{i}")
        for i in range(10):
            for _ in range(20):
                mn_part = ls.mn_part_for(f"s{i}", rng)
                label = ls.join(mn_part, rng.getrandbits(16))
                assert ls.owner_of(label) == f"s{i}"

    def test_common_labels_classify_common(self):
        rng = random.Random(2)
        ls = make_space()
        ls.register_mn("s1")
        for _ in range(50):
            assert ls.is_common(ls.common_label(rng))

    def test_flow_part_does_not_affect_ownership(self):
        rng = random.Random(3)
        ls = make_space()
        ls.register_mn("s1")
        mn_part = ls.mn_part_for("s1", rng)
        owners = {ls.owner_of(ls.join(mn_part, fp)) for fp in range(0, 65536, 997)}
        assert owners == {"s1"}

    def test_unassigned_sid_returns_none(self):
        ls = make_space(mn_bits=16, mn_shift=2)
        # With only "common" registered, most random labels are unowned.
        rng = random.Random(4)
        unowned = sum(
            ls.owner_of(rng.getrandbits(32)) is None for _ in range(200)
        )
        assert unowned > 150

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 100), draws=st.integers(1, 30))
    def test_disjointness_property(self, seed, draws):
        rng = random.Random(seed)
        ls = LabelSpace(rng)
        for i in range(8):
            ls.register_mn(f"s{i}")
        seen: dict[int, str] = {}
        for i in range(8):
            for _ in range(draws):
                mn_part = ls.mn_part_for(f"s{i}", rng)
                label = ls.join(mn_part, rng.getrandbits(16))
                prev = seen.get(label)
                assert prev is None or prev == f"s{i}"
                seen[label] = f"s{i}"
