"""Functional (toy) crypto primitives.

These model crypto *behaviour*, not strength: sealing binds an object to a
key so only the matching key opens it, key exchange produces a shared secret
both sides can derive, and every seal/open changes the simulated wire bytes
(callers refresh ``content_tag`` after crypto, which is what defeats Tor-style
content correlation in the attack modules).

Do not mistake these for real cryptography — they are simulation artifacts.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Key", "Sealed", "seal", "unseal", "KeyExchange", "WrongKeyError"]


class WrongKeyError(Exception):
    """Attempted to open a sealed object with the wrong key."""


_key_counter = itertools.count(1)


@dataclass(frozen=True)
class Key:
    """A symmetric key (identity-based toy model)."""

    key_id: int = field(default_factory=lambda: next(_key_counter))
    label: str = ""

    @classmethod
    def derive(cls, *parts: Any) -> "Key":
        """Deterministically derive a key from shared material."""
        digest = hashlib.sha256(repr(parts).encode()).hexdigest()
        return cls(key_id=int(digest[:12], 16), label=f"derived:{digest[:8]}")


@dataclass(frozen=True)
class Sealed:
    """An object sealed under a key. Nested sealing gives onion layers."""

    key_id: int
    inner: Any

    @property
    def layers(self) -> int:
        """Depth of nested sealing (onion layers)."""
        n, obj = 0, self
        while isinstance(obj, Sealed):
            n += 1
            obj = obj.inner
        return n


def seal(key: Key, obj: Any) -> Sealed:
    """Encrypt ``obj`` under ``key``."""
    return Sealed(key_id=key.key_id, inner=obj)


def unseal(key: Key, sealed: Sealed) -> Any:
    """Decrypt one layer; raises :class:`WrongKeyError` on key mismatch."""
    if not isinstance(sealed, Sealed):
        raise WrongKeyError("object is not sealed")
    if sealed.key_id != key.key_id:
        raise WrongKeyError(f"key {key.key_id} cannot open layer {sealed.key_id}")
    return sealed.inner


class KeyExchange:
    """Toy Diffie-Hellman: both halves derive the same session key."""

    @staticmethod
    def initiate(initiator_id: str, responder_id: str, nonce: int) -> Key:
        return Key.derive("dh", initiator_id, responder_id, nonce)

    @staticmethod
    def respond(initiator_id: str, responder_id: str, nonce: int) -> Key:
        return Key.derive("dh", initiator_id, responder_id, nonce)
