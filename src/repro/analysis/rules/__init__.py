"""Lint rule registry: the pluggable core of ``repro.analysis lint``.

Every check the linter can run is a :class:`Rule` — an id, a severity, a
one-line summary, a rationale, a worked example, and a ``check`` method
that walks one module's AST.  Rules self-register on import via
:func:`register`, so adding a pass means adding a module under
``repro.analysis.rules`` and nothing else: the CLI, the baseline matcher,
the SARIF reporter, ``--explain`` and the docs catalog all iterate the
registry.

A rule's ``check`` receives a :class:`LintContext` with the parsed tree,
the import-alias table, the source lines, and (when linting a whole tree)
the cross-file :class:`~repro.analysis.taint.TaintProject` built from
``# taint:`` annotations.  Findings are *raw*: pragma and baseline
filtering happen in the engine (:mod:`repro.analysis.lint`), so a rule
never needs to know about suppression.
"""

from __future__ import annotations

import ast
import textwrap
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..taint import TaintProject

__all__ = [
    "Severity",
    "Finding",
    "LintContext",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "rule_ids",
    "format_rule_table",
    "Aliases",
    "resolve_call_name",
]


class Severity:
    """Severity scale for lint rules (mirrors SARIF levels)."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One lint hit, tied to a file, line, and rule id."""

    path: str
    line: int
    rule: str
    message: str
    severity: str = Severity.ERROR

    def format(self) -> str:
        """Compiler-style one-liner: ``path:line: severity[rule] message``."""
        return f"{self.path}:{self.line}: {self.severity}[{self.rule}] {self.message}"


class Aliases(ast.NodeVisitor):
    """Collect ``import``/``from-import`` aliases of one module.

    Relative imports are resolved against ``module`` (the linted file's own
    dotted name) when known, so ``from ..obs import write_json`` inside
    ``repro.faults.chaos`` maps to ``repro.obs.write_json``.
    """

    def __init__(self, module: Optional[str] = None) -> None:
        self.module = module
        self.modules: dict[str, str] = {}  # local name -> dotted module
        self.names: dict[str, str] = {}    # local name -> dotted attribute

    def _rel_base(self, level: int) -> Optional[str]:
        if not self.module:
            return None
        parts = self.module.split(".")
        if level > len(parts):
            return None
        return ".".join(parts[:len(parts) - level]) or None

    def visit_Import(self, node: ast.Import) -> None:
        """Record `import x as y` aliases."""
        for alias in node.names:
            self.modules[alias.asname or alias.name.split(".")[0]] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Record `from m import x as y` aliases (relative resolved)."""
        base = node.module
        if node.level:
            rel = self._rel_base(node.level)
            if rel is None:
                return
            base = f"{rel}.{node.module}" if node.module else rel
        if base is None:
            return
        for alias in node.names:
            self.names[alias.asname or alias.name] = f"{base}.{alias.name}"


def resolve_call_name(node: ast.AST, aliases: Aliases) -> Optional[str]:
    """Dotted name of a call target, through the module's import aliases."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = node.id
    parts.reverse()
    if base in aliases.modules:
        return ".".join([aliases.modules[base], *parts])
    if base in aliases.names:
        return ".".join([aliases.names[base], *parts])
    return ".".join([base, *parts])


@dataclass
class LintContext:
    """Everything a rule may look at while checking one module."""

    path: str
    source: str
    tree: ast.AST
    lines: list[str]
    module: Optional[str] = None          # dotted module name, when derivable
    project: Optional["TaintProject"] = None  # cross-file annotation table

    _aliases: Optional[Aliases] = field(default=None, repr=False)

    @property
    def aliases(self) -> Aliases:
        """Import-alias table, built lazily and shared across rules."""
        if self._aliases is None:
            self._aliases = Aliases(self.module)
            self._aliases.visit(self.tree)
        return self._aliases

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted call-target name through this module's aliases."""
        return resolve_call_name(node, self.aliases)

    def line_text(self, lineno: int) -> str:
        """Source text of one 1-indexed line ('' when out of range)."""
        if 0 < lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for lint rules; subclasses fill the class attributes.

    ``id`` is the stable identifier used in pragmas, baselines, SARIF and
    docs.  ``example`` shows one line that trips the rule and (after a
    blank line) the sanctioned alternative — ``--explain`` prints it.
    """

    id: str = ""
    severity: str = Severity.ERROR
    summary: str = ""        # one line, shown in the catalog table
    rationale: str = ""      # a paragraph: why this breaks MIC's guarantees
    example: str = ""        # bad / good snippet for --explain

    def check(self, ctx: LintContext) -> Iterator[Finding]:  # pragma: no cover
        """Yield raw findings for one module."""
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        """A finding for this rule anchored at a node's line."""
        return Finding(ctx.path, getattr(node, "lineno", 0), self.id,
                       message, self.severity)


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and add a rule to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    if rule.severity not in (Severity.ERROR, Severity.WARNING):
        raise ValueError(f"rule {rule.id}: bad severity {rule.severity!r}")
    if not (rule.summary and rule.rationale and rule.example):
        raise ValueError(f"rule {rule.id}: summary/rationale/example required")
    _REGISTRY[rule.id] = rule
    return rule_cls


def _load_builtin_rules() -> None:
    """Import the rule modules so their ``@register`` decorators run."""
    from . import determinism, encapsulation  # noqa: F401
    from .. import taint  # noqa: F401  (registers endpoint-leak)


def all_rules() -> list[Rule]:
    """Every registered rule, id-ordered (stable for reports and docs)."""
    _load_builtin_rules()
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    """Sorted ids of every registered rule."""
    return [r.id for r in all_rules()]


def get_rule(rule_id: str) -> Rule:
    """One rule by id (KeyError with the known ids when absent)."""
    _load_builtin_rules()
    if rule_id not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")
    return _REGISTRY[rule_id]


def format_rule_table() -> str:
    """The rule catalog as a markdown table (embedded in docs/analysis.md).

    ``tests/analysis/test_docs_analysis.py`` diffs this rendering against
    the docs both ways, so the catalog cannot go stale.
    """
    rows = [
        "| id | severity | summary |",
        "|---|---|---|",
    ]
    for rule in all_rules():
        rows.append(f"| `{rule.id}` | {rule.severity} | {rule.summary} |")
    return "\n".join(rows)


def format_rule_catalog() -> str:
    """The full catalog: one docs section per rule, with rationale/example.

    Like :func:`format_rule_table`, this rendering is embedded in
    ``docs/analysis.md`` between markers and exact-diffed by the test
    suite in both directions.
    """
    sections: list[str] = []
    for rule in all_rules():
        lines = [
            f"### `{rule.id}` ({rule.severity})",
            "",
            f"{rule.summary}.",
            "",
            " ".join(rule.rationale.split()),
            "",
            "```python",
        ]
        lines.extend(
            textwrap.dedent(rule.example.strip("\n")).splitlines()
        )
        lines.append("```")
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


def explain(rule_id: str) -> str:
    """Multi-line ``--explain`` rendering for one rule."""
    rule = get_rule(rule_id)
    lines = [
        f"{rule.id} ({rule.severity})",
        f"  {rule.summary}",
        "",
        "rationale:",
    ]
    for ln in rule.rationale.strip().splitlines():
        lines.append(f"  {ln.strip()}")
    lines.append("")
    lines.append("example:")
    for ln in rule.example.strip("\n").splitlines():
        lines.append(f"  {ln}")
    lines.append("")
    lines.append(f"suppress one line with `# lint: allow({rule.id})`, a whole "
                 f"file with `# lint: file-allow({rule.id})`, or grandfather "
                 "a finding in the committed baseline.")
    return "\n".join(lines)
