"""Unit tests for the table-local and traversal layers of the verifier.

Each test hand-builds a tiny fabric, installs a known-bad (or known-good)
rule set directly into the switch tables, and asserts the verifier names
the offending switch and rule.
"""

from repro.analysis import VerificationReport, verify_network
from repro.analysis.verifier import match_key, verify_match_keys
from repro.net import Network, linear
from repro.net.addresses import IPv4Addr
from repro.net.flowtable import (
    Drop,
    FlowEntry,
    Group,
    GroupEntry,
    Match,
    Output,
    SetField,
)
from repro.net.topology import Topology

IP_A = IPv4Addr.parse("10.9.0.1")
IP_B = IPv4Addr.parse("10.9.0.2")
IP_C = IPv4Addr.parse("10.9.0.3")


def chain_net(n=2):
    """A linear fabric with one host per switch and empty tables."""
    return Network(linear(n, 1), seed=0)


def ring_net():
    """Three switches in a cycle, one host on s1 — loop-test playground."""
    topo = Topology("ring3")
    for i in (1, 2, 3):
        topo.add_switch(f"s{i}")
    topo.add_host("hA")
    topo.add_link("hA", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("s2", "s3")
    topo.add_link("s3", "s1")
    return Network(topo, seed=0)


class TestTableLocal:
    def test_clean_forwarding_pair_is_ok(self):
        net = chain_net(2)
        p = net.port("s1", "s2")
        net.switch("s1").table.install(
            FlowEntry(Match(ip_dst=IP_B), [Output(p)], priority=10)
        )
        net.switch("s2").table.install(
            FlowEntry(
                Match(ip_dst=IP_B), [Output(net.port("s2", "h2"))], priority=10
            )
        )
        report = verify_network(net)
        assert report.ok, report.format()

    def test_shadowed_rule_detected(self):
        net = chain_net(2)
        table = net.switch("s1").table
        table.install(FlowEntry(Match(), [Drop()], priority=60))
        table.install(
            FlowEntry(
                Match(ip_dst=IP_B),
                [Output(net.port("s1", "s2"))],
                priority=10,
            )
        )
        report = verify_network(net)
        hits = report.by_kind("shadowed-rule")
        assert hits and hits[0].switch == "s1"
        assert "unreachable" in hits[0].message

    def test_same_priority_overlap_detected(self):
        net = chain_net(2)
        table = net.switch("s1").table
        p_fwd, p_host = net.port("s1", "s2"), net.port("s1", "h1")
        table.install(
            FlowEntry(Match(ip_src=IP_A), [Output(p_fwd)], priority=10)
        )
        table.install(
            FlowEntry(Match(ip_dst=IP_B), [Output(p_host)], priority=10)
        )
        report = verify_network(net)
        hits = report.by_kind("overlap")
        assert hits and hits[0].switch == "s1"

    def test_identical_redundant_rule_is_warning(self):
        net = chain_net(2)
        table = net.switch("s1").table
        p = net.port("s1", "s2")
        table.install(FlowEntry(Match(ip_dst=IP_B), [Output(p)], priority=10))
        table.install(FlowEntry(Match(ip_dst=IP_B), [Output(p)], priority=10))
        report = verify_network(net)
        hits = report.by_kind("duplicate-rule")
        assert hits and hits[0].severity == "warning"
        assert not report.errors

    def test_dangling_group_detected(self):
        net = chain_net(2)
        net.switch("s1").table.install(
            FlowEntry(Match(ip_dst=IP_B), [Group(99)], priority=10)
        )
        report = verify_network(net)
        assert report.by_kind("dangling-group")

    def test_dangling_port_detected(self):
        net = chain_net(2)
        net.switch("s1").table.install(
            FlowEntry(Match(ip_dst=IP_B), [Output(47)], priority=10)
        )
        report = verify_network(net)
        hits = report.by_kind("dangling-port")
        assert hits and "47" in hits[0].message

    def test_group_bucket_dead_port_detected(self):
        net = chain_net(2)
        table = net.switch("s1").table
        table.install_group(GroupEntry(group_id=1, buckets=[[Output(47)]]))
        table.install(
            FlowEntry(Match(ip_dst=IP_B), [Group(1)], priority=10)
        )
        report = verify_network(net)
        assert report.by_kind("dangling-port")


class TestForwardingLoops:
    def test_port_level_loop_detected(self):
        net = ring_net()
        for a, b in (("s1", "s2"), ("s2", "s3"), ("s3", "s1")):
            net.switch(a).table.install(
                FlowEntry(
                    Match(ip_dst=IP_C), [Output(net.port(a, b))], priority=10
                )
            )
        report = verify_network(net)
        assert report.by_kind("loop"), report.format()

    def test_rewrite_loop_detected(self):
        # s1 rewrites A→B, s2 rewrites B→A, s3 forwards — the header class
        # returns to s1 as A.  Pure port-level analysis would miss this.
        net = ring_net()
        net.switch("s1").table.install(
            FlowEntry(
                Match(ip_dst=IP_A),
                [SetField("ip_dst", IP_B), Output(net.port("s1", "s2"))],
                priority=10,
            )
        )
        net.switch("s2").table.install(
            FlowEntry(
                Match(ip_dst=IP_B),
                [SetField("ip_dst", IP_A), Output(net.port("s2", "s3"))],
                priority=10,
            )
        )
        net.switch("s3").table.install(
            FlowEntry(
                Match(ip_dst=IP_A), [Output(net.port("s3", "s1"))], priority=10
            )
        )
        report = verify_network(net)
        hits = report.by_kind("loop")
        assert hits, report.format()

    def test_rewrite_chain_without_cycle_is_clean(self):
        net = ring_net()
        net.switch("s1").table.install(
            FlowEntry(
                Match(ip_dst=IP_A),
                [SetField("ip_dst", IP_B), Output(net.port("s1", "s2"))],
                priority=10,
            )
        )
        net.switch("s2").table.install(
            FlowEntry(Match(ip_dst=IP_B), [Drop()], priority=10)
        )
        report = verify_network(net)
        assert not report.by_kind("loop"), report.format()


class TestMatchKeys:
    def _mic_entry(self, cookie, sport=1000):
        match = Match(
            ip_src=IP_A, ip_dst=IP_B, sport=sport, dport=80,
            mpls=Match.NO_MPLS,
        )
        return FlowEntry(match, [Drop()], priority=50, cookie=cookie)

    def test_two_cookies_sharing_a_key_flagged(self):
        net = chain_net(2)
        table = net.switch("s1").table
        table.install(self._mic_entry(cookie=1))
        table.install(self._mic_entry(cookie=2))
        report = VerificationReport()
        verify_match_keys(net, report, priorities=(50,))
        hits = report.by_kind("duplicate-match-key")
        assert hits and hits[0].switch == "s1"
        assert "2 distinct flows" in hits[0].message

    def test_same_cookie_twice_not_a_key_collision(self):
        net = chain_net(2)
        table = net.switch("s1").table
        table.install(self._mic_entry(cookie=1))
        table.install(self._mic_entry(cookie=1))
        report = VerificationReport()
        verify_match_keys(net, report, priorities=(50,))
        assert not report.by_kind("duplicate-match-key")

    def test_match_key_mirrors_registry_format(self):
        m = Match(ip_src=IP_A, ip_dst=IP_B, sport=7, dport=8, mpls=Match.NO_MPLS)
        assert match_key(m) == ("10.9.0.1", "10.9.0.2", None, 7, 8)
        m2 = Match(ip_src=IP_A, ip_dst=IP_B, sport=7, dport=8, mpls=123)
        assert match_key(m2)[2] == 123
