"""CLI for the adversary layer.

``python -m repro.attacks tournament`` runs every anonymity strategy ×
every registered attack on the seeded fat-tree scenario and prints (or
writes, with ``-o``) the deterministic anonymity-vs-overhead frontier
JSON — the CI artifact.  ``--quick`` keeps it to the fat_tree(4) round;
the default also runs fat_tree(8) with a 20-bit m-address space.

``python -m repro.attacks table`` prints the attack contract table (the
markdown ``docs/anonymity.md`` embeds).
"""

from __future__ import annotations

import argparse
import sys

from ..anonymity import STRATEGIES
from .base import ATTACKS, format_attack_table
from .tournament import frontier_json, run_tournament


def _cmd_tournament(args: argparse.Namespace) -> int:
    frontier = run_tournament(
        strategies=args.strategies,
        seed=args.seed,
        quick=args.quick,
        attacks=args.attacks,
    )
    text = frontier_json(frontier)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    if not args.no_summary:
        print(_summary(frontier), file=sys.stderr)
    return 0


def _summary(frontier: dict) -> str:
    lines = ["tournament frontier:"]
    for rnd in frontier["rounds"]:
        lines.append(f"  {rnd['topology']} (mn_bits={rnd['mn_bits']}):")
        for name, entry in sorted(rnd["strategies"].items()):
            ov = entry["overhead"]
            accs = ", ".join(
                f"{a}={r['accuracy']:.3f}"
                for a, r in sorted(entry["attacks"].items())
            )
            lines.append(
                f"    {name:<6s} rules={ov['rules_installed']} "
                f"setup={ov['setup_latency_s_mean']:.4f}s "
                f"rot_installs={ov['rotation_installs']} "
                f"avail={entry['availability']:.3f}"
            )
            lines.append(f"      {accs}")
    return "\n".join(lines)


def _cmd_table(args: argparse.Namespace) -> int:
    print(format_attack_table())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.attacks",
        description="Adversary tournament and the anonymity frontier.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_t = sub.add_parser(
        "tournament",
        help="run every strategy x attack, emit the frontier JSON",
    )
    p_t.add_argument("--seed", type=int, default=0, help="scenario seed")
    p_t.add_argument("--quick", action="store_true",
                     help="fat_tree(4) round only (the CI slice)")
    p_t.add_argument("--strategies", nargs="+", metavar="NAME",
                     choices=sorted(STRATEGIES),
                     help="strategy subset (default: all registered)")
    p_t.add_argument("--attacks", nargs="+", metavar="NAME",
                     choices=sorted(ATTACKS),
                     help="attack subset (default: all registered)")
    p_t.add_argument("-o", "--output",
                     help="write frontier JSON here instead of stdout")
    p_t.add_argument("--no-summary", action="store_true",
                     help="suppress the human-readable stderr summary")
    p_t.set_defaults(fn=_cmd_tournament)

    p_tab = sub.add_parser("table", help="print the attack contract table")
    p_tab.set_defaults(fn=_cmd_table)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
