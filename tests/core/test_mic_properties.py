"""Hypothesis-driven end-to-end properties of MIC.

These run whole channels under randomized parameters and assert the
paper's invariants hold for *every* configuration, not just the defaults.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import MIC_PRIORITY, MicEndpoint, MicServer, MimicController
from repro.net import Network, fat_tree
from repro.sdn import Controller, L3ShortestPathApp

COMMON = dict(
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
    max_examples=10,
)


def build(seed):
    net = Network(fat_tree(4), seed=seed)
    ctrl = Controller(net)
    mic = ctrl.register(MimicController())
    ctrl.register(L3ShortestPathApp())
    return net, mic


@settings(**COMMON)
@given(
    seed=st.integers(0, 10_000),
    n_flows=st.integers(1, 4),
    n_mns=st.integers(1, 5),
    src=st.integers(1, 8),
    dst=st.integers(9, 16),
)
def test_establish_invariants(seed, n_flows, n_mns, src, dst):
    """For any configuration: the grant hides the responder, flow IDs are
    unique, match keys never collide, and labels sit in MN-owned classes."""
    net, mic = build(seed)

    def go():
        return (
            yield from mic.establish(
                f"h{src}", f"h{dst}", service_port=80,
                n_flows=n_flows, n_mns=n_mns,
            )
        )

    proc = net.sim.process(go())
    net.run(until=proc)
    grant = proc.value

    resp_ip = net.host(f"h{dst}").ip
    init_ip = net.host(f"h{src}").ip
    assert grant.flow_count == n_flows
    for fg in grant.flows:
        assert fg.entry_ip not in (resp_ip, init_ip)

    channel = mic.channels[grant.channel_id]
    fids = [p.flow_id for p in channel.flows]
    assert len(set(fids)) == len(fids)

    for plan in channel.flows:
        assert len(plan.mn_positions) == n_mns
        for addr in plan.fwd_addrs[1:-1] + plan.rev_addrs[1:-1]:
            if addr.mpls is not None:
                owner = mic.labels.owner_of(addr.mpls)
                assert owner in plan.mn_names

    for sw in net.switches():
        keys = [e.match.key() for e in sw.table.entries
                if e.priority == MIC_PRIORITY]
        assert len(keys) == len(set(keys))


@settings(**COMMON)
@given(
    seed=st.integers(0, 10_000),
    n_flows=st.integers(1, 3),
    n_mns=st.integers(2, 4),
    payload_len=st.integers(1, 5_000),
)
def test_data_integrity_any_configuration(seed, n_flows, n_mns, payload_len):
    """Bytes in == bytes out, both directions, for any channel shape."""
    net, mic = build(seed)
    rng = net.sim.rng("payload")
    payload = bytes(rng.getrandbits(8) for _ in range(payload_len))
    server = MicServer(net.host("h16"), 80)
    endpoint = MicEndpoint(net.host("h1"), mic)
    result = {}

    def client():
        stream = yield from endpoint.connect(
            "h16", service_port=80, n_flows=n_flows, n_mns=n_mns
        )
        stream.send(payload)
        result["echo"] = yield from stream.recv_exactly(payload_len)

    def srv():
        stream = yield server.accept()
        data = yield from stream.recv_exactly(payload_len)
        stream.send(data)

    net.sim.process(client())
    net.sim.process(srv())
    net.run(until=60.0)
    assert result.get("echo") == payload


@settings(**COMMON)
@given(seed=st.integers(0, 10_000), n_channels=st.integers(2, 6))
def test_teardown_restores_clean_state(seed, n_channels):
    """Establish-then-teardown leaves no residue for any channel count."""
    net, mic = build(seed)

    def go():
        grants = []
        for i in range(n_channels):
            g = yield from mic.establish(
                f"h{(i % 8) + 1}", f"h{16 - (i % 8)}", service_port=80
            )
            grants.append(g)
        return grants

    proc = net.sim.process(go())
    net.run(until=proc)
    for g in proc.value:
        mic.teardown(g.channel_id)
    net.run(until=net.sim.now + 1.0)
    assert mic.live_channels == 0
    assert mic.flow_ids.live_count == 0
    assert mic.registry.total_keys() == 0
    for sw in net.switches():
        assert not any(e.priority == MIC_PRIORITY for e in sw.table.entries)
