"""Meta-test: every public item in the library is documented.

Deliverable discipline — the public API must carry doc comments.  Walks all
``repro`` modules and asserts docstrings on modules, public classes, public
functions and public methods.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_METHOD_NAMES = {
    # dunder/boilerplate that inherits documented semantics
    "__init__", "__repr__", "__str__", "__len__", "__iter__", "__contains__",
    "__getitem__", "__int__", "__lt__", "__add__", "__post_init__", "__eq__",
    "__hash__", "__call__",
}


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


def test_obs_package_is_covered():
    """The walk must include the observability package (ISSUE 2 extension)."""
    names = {m.__name__ for m in iter_modules()}
    assert "repro.obs" in names
    assert "repro.obs.observer" in names
    assert "repro.obs.contract" in names


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at home
        yield name, obj


@pytest.mark.parametrize("module", list(iter_modules()),
                         ids=lambda m: m.__name__)
def test_module_documented(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", list(iter_modules()),
                         ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    for name, obj in public_members(module):
        if inspect.isclass(obj):
            if not obj.__doc__:
                undocumented.append(f"class {name}")
            for mname, member in vars(obj).items():
                if mname.startswith("_") or mname in SKIP_METHOD_NAMES:
                    continue
                if isinstance(member, property):
                    target = member.fget
                elif inspect.isfunction(member):
                    target = member
                else:
                    continue
                if target is not None and not target.__doc__:
                    undocumented.append(f"{name}.{mname}")
        elif inspect.isfunction(obj):
            if not obj.__doc__:
                undocumented.append(f"def {name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {', '.join(undocumented)}"
    )
