"""Docs cross-reference checker: the prose must not rot.

``docs/*.md`` (and the top-level references they link) name code paths
(``repro.net.hybrid.HybridEngine``) and link each other with relative
markdown links and ``#anchors``.  Both kinds of reference decay silently
as the code grows, so this module makes them checkable:

* **code paths** — every dotted ``repro.*`` reference must import: the
  longest importable module prefix is imported and the remaining
  attributes are resolved on it (``repro.obs.journey.format_hop_table``
  → import ``repro.obs.journey``, getattr ``format_hop_table``);
* **internal links** — every relative markdown link must point at an
  existing file, and a ``#fragment`` must match a heading anchor in the
  target (GitHub-style slugification).

``python -m repro.analysis docs-check`` runs both passes and exits
non-zero on any broken reference — the lint job's docs gate.
"""

from __future__ import annotations

import importlib
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "DocsIssue",
    "check_code_paths",
    "check_internal_links",
    "check_docs",
    "heading_anchors",
]

# Dotted repro.* references in prose or backticks.  A trailing ``(...)`` or
# markup character is not part of the path.
_CODE_PATH = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")

# Markdown inline links: [text](target).  Images and reference-style links
# are out of scope (the docs use neither).
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$", re.MULTILINE)

# Fenced code blocks are stripped before link checking: a ``[h1, s1]`` path
# literal or example snippet is not a markdown link.  Code-path checking
# keeps them — snippets that import rotten modules are exactly the rot this
# pass exists to catch.
_FENCE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


@dataclass(frozen=True)
class DocsIssue:
    """One broken reference: where it is, what it points at, why it broke."""

    doc: str
    kind: str  # "code-path" | "link" | "anchor"
    ref: str
    detail: str

    def format(self) -> str:
        """One human-readable line: doc, kind, reference, reason."""
        return f"{self.doc}: [{self.kind}] {self.ref} — {self.detail}"


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links → text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(md_text: str) -> set[str]:
    """Every anchor the file's headings export (GitHub slug rules)."""
    return {_slugify(m.group(2)) for m in _HEADING.finditer(_FENCE.sub("", md_text))}


def _resolve_code_path(path: str) -> str | None:
    """None if ``path`` imports/resolves, else a reason string."""
    parts = path.split(".")
    module, idx = None, 0
    for i in range(len(parts), 0, -1):
        candidate = ".".join(parts[:i])
        try:
            module = importlib.import_module(candidate)
            idx = i
            break
        except ImportError:
            continue
        except Exception as exc:  # import-time crash is also rot
            return f"importing {candidate} raised {type(exc).__name__}: {exc}"
    if module is None:
        return "no importable module prefix"
    obj = module
    for attr in parts[idx:]:
        try:
            obj = getattr(obj, attr)
        except AttributeError:
            return f"{'.'.join(parts[:idx])} has no attribute {attr!r}"
    return None


def check_code_paths(doc: Path) -> list[DocsIssue]:
    """Every dotted ``repro.*`` reference in the doc must import."""
    issues = []
    seen: set[str] = set()
    for match in _CODE_PATH.finditer(doc.read_text(encoding="utf-8")):
        ref = match.group(0)
        if ref in seen:
            continue
        seen.add(ref)
        detail = _resolve_code_path(ref)
        if detail is not None:
            issues.append(DocsIssue(doc.name, "code-path", ref, detail))
    return issues


def check_internal_links(doc: Path) -> list[DocsIssue]:
    """Relative links must hit existing files; fragments, real anchors."""
    issues = []
    text = _FENCE.sub("", doc.read_text(encoding="utf-8"))
    for match in _MD_LINK.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith("mailto:"):
            continue  # external links are out of scope (no network in CI)
        path_part, _, fragment = target.partition("#")
        dest = doc if not path_part else (doc.parent / path_part).resolve()
        if not dest.exists():
            issues.append(
                DocsIssue(doc.name, "link", target, f"{path_part} does not exist")
            )
            continue
        if fragment and dest.suffix == ".md":
            anchors = heading_anchors(dest.read_text(encoding="utf-8"))
            if fragment not in anchors:
                issues.append(
                    DocsIssue(
                        doc.name, "anchor", target,
                        f"no heading in {dest.name} slugs to #{fragment}",
                    )
                )
    return issues


def check_docs(docs_dir: Path, extra: tuple[str, ...] = ()) -> list[DocsIssue]:
    """Run both passes over ``docs/*.md`` plus any extra files."""
    files = sorted(docs_dir.glob("*.md"))
    files += [docs_dir / name for name in extra]
    issues: list[DocsIssue] = []
    for doc in files:
        if not doc.exists():
            issues.append(DocsIssue(doc.name, "link", str(doc), "file missing"))
            continue
        issues.extend(check_code_paths(doc))
        issues.extend(check_internal_links(doc))
    return issues
