"""Counter correctness on a scripted run: exact packet/byte assertions.

A 3-switch chain with hand-installed rules carries a known number of
identically-sized packets, so every per-rule, per-port and per-host
counter the snapshot derives has one exact right answer.
"""

import pytest

from repro.net import FlowEntry, Match, Network, Output, linear
from repro.obs import Observer

N_PACKETS = 5
PAYLOAD = 200


@pytest.fixture
def chain():
    """linear(3, 1): h1-s1-s2-s3-h3, one forwarding rule per switch,
    plus a never-matching decoy rule on s1; 5 packets h1 -> h3."""
    net = Network(linear(3, hosts_per_switch=1), seed=1)
    h1, h3 = net.host("h1"), net.host("h3")
    rules = {}
    for sw_name, out in (
        ("s1", ("s1", "s2")),
        ("s2", ("s2", "s3")),
        ("s3", ("s3", "h3")),
    ):
        entry = FlowEntry(Match(ip_dst=h3.ip), [Output(net.port(*out))])
        net.switch(sw_name).table.install(entry)
        rules[sw_name] = entry
    # A rule nothing matches: its counters must stay at zero / -1.
    cold = FlowEntry(Match(ip_dst=h3.ip, dport=81), [Output(1)], priority=10)
    net.switch("s1").table.install(cold)

    obs = Observer.attach(net)
    h3.bind("tcp", 80, lambda host, p: None)
    pkts = [
        h1.make_packet(h3.ip, dport=80, payload_size=PAYLOAD)
        for _ in range(N_PACKETS)
    ]
    for p in pkts:
        h1.send_packet(p)
    net.run()
    return net, obs, rules, cold, sum(p.size for p in pkts)


def test_per_rule_packet_and_byte_counters(chain):
    net, obs, rules, cold, total_bytes = chain
    snap = obs.snapshot()
    for sw_name, entry in rules.items():
        labels = dict(switch=sw_name, entry_id=entry.entry_id)
        assert snap.value("switch.rule.packets", **labels) == N_PACKETS
        assert snap.value("switch.rule.bytes", **labels) == total_bytes
        assert snap.value("switch.rule.last_hit_s", **labels) == entry.last_hit_s
        assert entry.last_hit_s > 0.0


def test_last_hit_ordering_follows_the_path(chain):
    net, obs, rules, cold, _ = chain
    # Each hop sees the last packet strictly later than the previous hop.
    assert rules["s1"].last_hit_s < rules["s2"].last_hit_s < rules["s3"].last_hit_s


def test_unmatched_rule_stays_cold(chain):
    net, obs, rules, cold, _ = chain
    snap = obs.snapshot()
    labels = dict(switch="s1", entry_id=cold.entry_id)
    assert snap.value("switch.rule.packets", **labels) == 0
    assert snap.value("switch.rule.bytes", **labels) == 0
    assert snap.value("switch.rule.last_hit_s", **labels) == -1.0


def test_per_switch_aggregates(chain):
    net, obs, rules, cold, _ = chain
    snap = obs.snapshot()
    for sw_name in ("s1", "s2", "s3"):
        assert snap.value("switch.forwarded.packets", switch=sw_name) == N_PACKETS
        assert snap.value("switch.punted.packets", switch=sw_name) == 0
    assert snap.value("switch.table.entries", switch="s1") == 2
    assert snap.value("switch.table.entries", switch="s2") == 1


def test_per_port_counters_match_the_path(chain):
    net, obs, rules, cold, total_bytes = chain
    snap = obs.snapshot()
    hops = [("h1", "s1"), ("s1", "s2"), ("s2", "s3"), ("s3", "h3")]
    for src, dst in hops:
        tx = dict(node=src, port=net.port(src, dst))
        rx = dict(node=dst, port=net.port(dst, src))
        assert snap.value("port.tx.packets", **tx) == N_PACKETS
        assert snap.value("port.tx.bytes", **tx) == total_bytes
        assert snap.value("port.tx.drops", **tx) == 0
        # Heap is drained, so rx agrees exactly with the far end's tx.
        assert snap.value("port.rx.packets", **rx) == N_PACKETS
        assert snap.value("port.rx.bytes", **rx) == total_bytes
    # Nothing moved on the reverse directions or toward h2.
    assert snap.value("port.tx.packets", node="h3", port=net.port("h3", "s3")) == 0
    assert snap.value("port.tx.packets", node="s2", port=net.port("s2", "h2")) == 0
    assert snap.total("port.tx.drops") == 0


def test_host_stack_counters(chain):
    net, obs, rules, cold, total_bytes = chain
    snap = obs.snapshot()
    assert snap.value("host.stack.tx.packets", host="h1") == N_PACKETS
    assert snap.value("host.stack.tx.bytes", host="h1") == total_bytes
    assert snap.value("host.stack.rx.packets", host="h3") == N_PACKETS
    assert snap.value("host.stack.rx.bytes", host="h3") == total_bytes
    assert snap.value("host.stack.rx.packets", host="h2") == 0


def test_queue_gauges_and_cpu(chain):
    net, obs, rules, cold, _ = chain
    snap = obs.snapshot()
    # Drained run: every transmit backlog is empty, capacity is the budget.
    for ch in obs.channels():
        assert snap.value("link.queue.bytes", channel=ch.name) == 0
        assert (
            snap.value("link.queue.capacity.bytes", channel=ch.name)
            == ch.queue_bytes
        )
    assert snap.value("node.cpu.busy_s", node="h1") > 0
    assert snap.value("node.cpu.busy_s", node="s2") > 0


def test_packet_latency_histogram_fires_per_delivery(chain):
    net, obs, rules, cold, _ = chain
    snap = obs.snapshot()
    summary = snap.histogram("net.packet_latency_s", host="h3")
    assert summary["count"] == N_PACKETS
    assert summary["min"] > 0
    assert summary["max"] >= summary["p99"] >= summary["p50"] >= summary["min"]


def test_value_requires_unique_match(chain):
    net, obs, rules, cold, _ = chain
    snap = obs.snapshot()
    with pytest.raises(KeyError):
        snap.value("switch.rule.packets", switch="s1")  # two rules on s1
    with pytest.raises(KeyError):
        snap.value("switch.rule.packets", switch="nope")
    assert snap.total("switch.rule.packets", switch="s1") == N_PACKETS
