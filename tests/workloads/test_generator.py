"""Unit tests for workload generators."""

import random

import pytest

from repro.workloads import dc_mix, pick_pairs, poisson_arrivals


class TestPoisson:
    def test_times_sorted_and_within_horizon(self):
        rng = random.Random(0)
        times = list(poisson_arrivals(rng, rate_per_s=50.0, horizon_s=2.0))
        assert times == sorted(times)
        assert all(0 < t < 2.0 for t in times)

    def test_rate_roughly_respected(self):
        rng = random.Random(1)
        times = list(poisson_arrivals(rng, rate_per_s=100.0, horizon_s=10.0))
        assert 800 < len(times) < 1200  # ~1000 expected

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            list(poisson_arrivals(random.Random(0), 0.0, 1.0))


class TestPickPairs:
    HOSTS = [f"h{i}" for i in range(1, 9)]

    def test_src_differs_from_dst(self):
        rng = random.Random(2)
        for src, dst in pick_pairs(rng, self.HOSTS, 50):
            assert src != dst

    def test_distinct_sources(self):
        rng = random.Random(3)
        pairs = pick_pairs(rng, self.HOSTS, 8, distinct_src=True)
        assert len({s for s, _ in pairs}) == 8

    def test_distinct_sources_exhausted(self):
        with pytest.raises(ValueError):
            pick_pairs(random.Random(0), self.HOSTS, 9, distinct_src=True)

    def test_too_few_hosts(self):
        with pytest.raises(ValueError):
            pick_pairs(random.Random(0), ["h1"], 1)


class TestDcMix:
    def test_mix_sorted_and_typed(self):
        rng = random.Random(4)
        specs = dc_mix(rng, self.HOSTS if hasattr(self, "HOSTS") else
                       [f"h{i}" for i in range(1, 9)], horizon_s=1.0)
        starts = [s.start_s for s in specs]
        assert starts == sorted(starts)
        kinds = {s.kind for s in specs}
        assert kinds <= {"rpc", "bulk"}

    def test_rpcs_dominate_count(self):
        rng = random.Random(5)
        hosts = [f"h{i}" for i in range(1, 9)]
        specs = dc_mix(rng, hosts, horizon_s=5.0,
                       rpc_rate_per_s=50.0, bulk_rate_per_s=2.0)
        rpcs = sum(1 for s in specs if s.kind == "rpc")
        bulks = sum(1 for s in specs if s.kind == "bulk")
        assert rpcs > 5 * bulks

    def test_bulk_bytes_dominate_volume(self):
        rng = random.Random(6)
        hosts = [f"h{i}" for i in range(1, 9)]
        specs = dc_mix(rng, hosts, horizon_s=5.0)
        rpc_bytes = sum(s.nbytes for s in specs if s.kind == "rpc")
        bulk_bytes = sum(s.nbytes for s in specs if s.kind == "bulk")
        assert bulk_bytes > rpc_bytes
