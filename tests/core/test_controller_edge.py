"""Edge cases and failure paths of the Mimic Controller."""

import pytest

from repro.core import MimicController, MC_IP, MC_PORT, McReply, McRequest
from repro.core.controller import EstablishError
from repro.crypto import Key, seal
from repro.net import Network, fat_tree, ip, linear
from repro.sdn import Controller, L3ShortestPathApp


def build(topo=None, seed=0, **kw):
    net = Network(topo or fat_tree(4), seed=seed)
    ctrl = Controller(net)
    mic = ctrl.register(MimicController(**kw))
    ctrl.register(L3ShortestPathApp())
    return net, ctrl, mic


def run_gen(net, gen):
    proc = net.sim.process(gen)
    net.run(until=proc)
    return proc.value


class TestEstablishValidation:
    def test_bad_counts(self):
        net, ctrl, mic = build()
        with pytest.raises(EstablishError):
            run_gen(net, mic.establish("h1", "h2", service_port=80, n_flows=0))
        with pytest.raises(EstablishError):
            run_gen(net, mic.establish("h1", "h2", service_port=80, n_mns=0))

    def test_address_responder_requires_port(self):
        net, ctrl, mic = build()
        with pytest.raises(EstablishError, match="service_port"):
            run_gen(net, mic.establish("h1", net.host("h16").ip))

    def test_unknown_address(self):
        net, ctrl, mic = build()
        with pytest.raises(EstablishError, match="no host"):
            run_gen(net, mic.establish("h1", ip("10.99.99.99"), service_port=80))

    def test_bad_responder_type(self):
        net, ctrl, mic = build()
        with pytest.raises(EstablishError):
            run_gen(net, mic.establish("h1", 12345, service_port=80))

    def test_hidden_service_registration_validates_host(self):
        net, ctrl, mic = build()
        with pytest.raises(ValueError):
            mic.register_hidden_service("svc", "ghost-host", 80)

    def test_too_many_mns_for_tiny_topology(self):
        net, ctrl, mic = build(linear(1, hosts_per_switch=2))
        with pytest.raises((EstablishError, ValueError)):
            run_gen(net, mic.establish("h1", "h2", service_port=80, n_mns=6))

    def test_rollback_releases_ids_on_failure(self):
        net, ctrl, mic = build(linear(1, hosts_per_switch=2))
        live_before = mic.flow_ids.live_count
        with pytest.raises(Exception):
            run_gen(net, mic.establish("h1", "h2", service_port=80,
                                       n_flows=3, n_mns=6))
        assert mic.flow_ids.live_count == live_before
        assert mic.registry.total_keys() == 0


class TestRequestPath:
    def test_garbage_request_ignored(self):
        """A request sealed under the wrong key is dropped silently."""
        net, ctrl, mic = build()
        h1 = net.host("h1")
        wrong_key = Key(label="attacker")
        req = McRequest(kind="establish", reply_port=5555, responder="h16",
                        service_port=80)
        pkt = h1.make_packet(MC_IP, proto="udp", sport=5555, dport=MC_PORT,
                             payload=seal(wrong_key, req), payload_size=128)
        h1.send_packet(pkt)
        net.run(until=1.0)
        assert mic.live_channels == 0

    def test_unknown_request_kind_refused(self):
        net, ctrl, mic = build()
        h1 = net.host("h1")
        replies = []
        h1.bind("udp", 5556, lambda _h, p: replies.append(p))
        key = mic.client_key("h1")
        req = McRequest(kind="frobnicate", reply_port=5556)
        pkt = h1.make_packet(MC_IP, proto="udp", sport=5556, dport=MC_PORT,
                             payload=seal(key, req), payload_size=128)
        h1.send_packet(pkt)
        net.run(until=1.0)
        assert len(replies) == 1
        from repro.crypto import unseal

        reply = unseal(key, replies[0].payload)
        assert isinstance(reply, McReply) and not reply.ok

    def test_establish_refusal_is_replied(self):
        net, ctrl, mic = build()
        h1 = net.host("h1")
        replies = []
        h1.bind("udp", 5557, lambda _h, p: replies.append(p))
        key = mic.client_key("h1")
        req = McRequest(kind="establish", reply_port=5557,
                        responder="no-such-service")
        pkt = h1.make_packet(MC_IP, proto="udp", sport=5557, dport=MC_PORT,
                             payload=seal(key, req), payload_size=128)
        h1.send_packet(pkt)
        net.run(until=1.0)
        from repro.crypto import unseal

        reply = unseal(key, replies[0].payload)
        assert not reply.ok and "no-such-service" in reply.error

    def test_non_mc_packets_not_consumed(self):
        """MIC's packet-in hook must leave ordinary traffic to the L3 app."""
        net, ctrl, mic = build()
        h1, h16 = net.host("h1"), net.host("h16")
        got = []
        h16.bind("tcp", 80, lambda _h, p: got.append(p))
        h1.send_packet(h1.make_packet(h16.ip, dport=80, payload_size=1))
        net.run(until=1.0)
        assert len(got) == 1  # L3 app routed it


class TestConfigValidation:
    def test_bad_strategy_rejected(self):
        with pytest.raises(ValueError):
            MimicController(mn_strategy="psychic")

    def test_spread_strategy_places_n_mns(self):
        net, ctrl, mic = build(mn_strategy="spread")
        grant = run_gen(net, mic.establish("h1", "h16", service_port=80, n_mns=3))
        plan = mic.channels[grant.channel_id].flows[0]
        assert len(plan.mn_positions) == 3

    def test_mc_cpu_accounting_grows(self):
        net, ctrl, mic = build()
        from repro.core import MicEndpoint, MicServer

        MicServer(net.host("h16"), 80)
        endpoint = MicEndpoint(net.host("h1"), mic)

        def client():
            yield from endpoint.connect("h16", service_port=80)

        run_gen(net, client())
        assert mic.cpu_busy_s > 0
        assert mic.requests_served == 1
