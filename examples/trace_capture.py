#!/usr/bin/env python3
"""Watch a mimic channel on the wire, tcpdump-style.

Captures what two different switches forward while a MIC channel carries a
message: at the first Mimic Node you can see the rewrite happen (ingress
and egress addresses differ), and at a mid-path switch the addresses are
pure fiction — real hosts, wrong story.

The run is observed (`repro.obs`): the closing report reads the channel
setup time from the `mic.connect` span and per-MN rule hits from the
metrics snapshot, and `--metrics-json PATH` exports the full snapshot
(`make obs-demo` pipes it back through `python -m repro.obs summarize`).

Run:  python examples/trace_capture.py [--metrics-json PATH]
"""

import argparse
from typing import Optional

from repro.core import deploy_mic
from repro.net.tracefmt import capture_at
from repro.obs import write_json


def main(argv: Optional[list] = None) -> None:
    ap = argparse.ArgumentParser(description="traced MIC channel capture")
    ap.add_argument("--metrics-json", metavar="PATH",
                    help="export the run's metrics snapshot as JSON")
    args = ap.parse_args(argv)

    dep = deploy_mic(seed=13, observe=True)
    server = dep.server("h16", 80)
    alice = dep.endpoint("h1")

    def client():
        stream = yield from alice.connect("h16", service_port=80, n_mns=3)
        stream.send(b"the payload everyone can see but nobody can place")

    def srv():
        stream = yield server.accept()
        yield from stream.recv_exactly(50)

    dep.sim.process(client())
    dep.sim.process(srv())
    dep.run_for(10.0)

    plan = next(iter(dep.mic.channels.values())).flows[0]
    print(f"channel walk : {' -> '.join(plan.walk)}")
    print(f"mimic nodes  : {', '.join(plan.mn_names)}")
    print(f"alice is {dep.net.host('h1').ip}, bob is {dep.net.host('h16').ip}\n")

    first_mn = plan.mn_names[0]
    print(f"--- capture at {first_mn} (first MN: watch the rewrite) ---")
    print(capture_at(dep.net.trace, first_mn, limit=6))

    mid = plan.walk[len(plan.walk) // 2]
    if mid != first_mn and dep.net.topo.kind(mid) == "switch":
        print(f"\n--- capture at {mid} (mid-path: all addresses are mimicry) ---")
        print(capture_at(dep.net.trace, mid, limit=6))

    real = {str(dep.net.host("h1").ip), str(dep.net.host("h16").ip)}
    mid_lines = capture_at(dep.net.trace, mid)
    print(
        "\nreal endpoint visible in the mid-path capture together: "
        f"{any(real <= set(line.split()) for line in mid_lines.splitlines())}"
    )

    # The same story in numbers, via the observability layer.
    connect = dep.obs.spans.last("mic.connect")
    snap = dep.obs.snapshot()
    print(f"\nchannel setup (mic.connect span): {connect.duration_s * 1e3:.3f} ms")
    for mn in plan.mn_names:
        hits = snap.total("switch.rule.packets", switch=mn)
        print(f"  rule hits at {mn}: {int(hits)} packets")
    latency = snap.histogram("net.packet_latency_s", host="h16")
    print(
        f"packet latency into h16: n={int(latency['count'])} "
        f"p50={latency['p50'] * 1e3:.3f} ms p99={latency['p99'] * 1e3:.3f} ms"
    )
    if args.metrics_json:
        write_json(snap, args.metrics_json)
        print(f"metrics snapshot written to {args.metrics_json}")


if __name__ == "__main__":
    main()
