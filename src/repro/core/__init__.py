"""MIC core: the paper's contribution.

* :mod:`.maga` — reversible XOR/shift hash family (MAGA, Sec IV-B3)
* :mod:`.labels` — MPLS label-space partition (CF/MF, per-MN sets)
* :mod:`.restrictions` — per-link plausible m-address restrictions
* :mod:`.collision` — flow IDs, per-MN address spaces, key registry
* :mod:`.channel` — channel/m-flow state and grants
* :mod:`.controller` — the Mimic Controller SDN app
* :mod:`.client` — user-end module (socket-like API) and server library
* :mod:`.multiflow` — multiple-m-flows slicing/reassembly
* :mod:`.hidden` — hidden service map (receiver anonymity)
"""

from .channel import ChannelGrant, FlowGrant, MFlowPlan, MimicChannel
from .client import (
    MicDatagramServer,
    MicDatagramSocket,
    MicEndpoint,
    MicError,
    MicServer,
    MicStream,
)
from .cluster import IdSpacePartition, ShardedFlowIdAllocator, shard_controllers
from .commonflows import CommonFlowTagger
from .cover import COVER_PORT, CoverTraffic
from .collision import (
    CollisionRegistry,
    FlowIdAllocator,
    MAddress,
    MnAddressSpace,
)
from .controller import (
    MC_IP,
    MC_PORT,
    MIC_PRIORITY,
    McReply,
    McRequest,
    MimicController,
)
from .deployment import MicDeployment, deploy_mic
from .hidden import HiddenService, HiddenServiceMap
from .labels import LabelSpace, LabelSpaceExhausted
from .maga import HashParams, ReversibleHash
from .multiflow import Reassembler, Slicer
from .restrictions import AddressRestrictions

__all__ = [
    "AddressRestrictions",
    "ChannelGrant",
    "CollisionRegistry",
    "COVER_PORT",
    "CommonFlowTagger",
    "CoverTraffic",
    "IdSpacePartition",
    "ShardedFlowIdAllocator",
    "shard_controllers",
    "FlowGrant",
    "FlowIdAllocator",
    "HashParams",
    "HiddenService",
    "HiddenServiceMap",
    "LabelSpace",
    "LabelSpaceExhausted",
    "MAddress",
    "MC_IP",
    "MC_PORT",
    "MFlowPlan",
    "MIC_PRIORITY",
    "McReply",
    "McRequest",
    "MicDatagramServer",
    "MicDatagramSocket",
    "MicDeployment",
    "MicEndpoint",
    "MicError",
    "deploy_mic",
    "MicServer",
    "MicStream",
    "MimicChannel",
    "MimicController",
    "MnAddressSpace",
    "Reassembler",
    "ReversibleHash",
    "Slicer",
]
