"""Anonymity-set quantification per observation point.

MIC's m-addresses are drawn from each link's *plausible* host pairs, so an
observer who captures a packet on a link learns only that the real pair is
one of the pairs plausible there — the flow "can mimic flows of other
participants".  The size (and entropy) of that candidate set is the
quantitative anonymity the link offers.

Host access links are degenerate (the host on them is always one true
endpoint — the paper concedes sender anonymity ends at the sender's first
link); interior fabric links mix traffic from many pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.restrictions import AddressRestrictions

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.journey import Journey
    from .observer import ObservationPoint

__all__ = [
    "LinkAnonymity",
    "EmpiricalAnonymity",
    "link_anonymity",
    "walk_anonymity",
    "empirical_anonymity",
]


@dataclass(frozen=True)
class LinkAnonymity:
    """What an observer on directed link u→v can narrow the flow down to."""

    link: tuple[str, str]
    pair_count: int
    sender_set_size: int
    receiver_set_size: int

    @property
    def sender_entropy_bits(self) -> float:
        """Entropy of the sender identity under a uniform prior over the
        plausible pairs (marginalized onto senders)."""
        return math.log2(self.sender_set_size) if self.sender_set_size else 0.0

    @property
    def receiver_entropy_bits(self) -> float:
        """Entropy of the receiver identity under a uniform prior."""
        return math.log2(self.receiver_set_size) if self.receiver_set_size else 0.0


def link_anonymity(restrictions: AddressRestrictions, u: str, v: str) -> LinkAnonymity:
    """Candidate real senders/receivers for a flow observed on u→v."""
    pairs = restrictions.plausible_pairs(u, v)
    senders = {a for a, _ in pairs}
    receivers = {b for _, b in pairs}
    return LinkAnonymity(
        link=(u, v),
        pair_count=len(pairs),
        sender_set_size=len(senders),
        receiver_set_size=len(receivers),
    )


def walk_anonymity(
    restrictions: AddressRestrictions, walk: list[str]
) -> list[LinkAnonymity]:
    """Per-link anonymity along a channel's walk (in forward direction)."""
    return [
        link_anonymity(restrictions, u, v) for u, v in zip(walk, walk[1:])
    ]


@dataclass(frozen=True)
class EmpiricalAnonymity:
    """Ground-truth endpoints behind one observation point's capture.

    :func:`link_anonymity` counts who *could plausibly* be behind a flow;
    this counts who *actually was*, from journey ground truth — the gap
    between the two is how much of the anonymity set is real mixing versus
    combinatorial possibility.
    """

    switch: str
    observed_tags: int  # distinct wire contents the adversary captured
    labeled_tags: int  # of those, tags the journey recorder has truth for
    true_senders: frozenset[str]
    true_receivers: frozenset[str]

    @property
    def sender_set_size(self) -> int:
        """How many real senders the captured traffic mixes together."""
        return len(self.true_senders)

    @property
    def receiver_set_size(self) -> int:
        """How many real receivers the captured traffic mixes together."""
        return len(self.true_receivers)


def empirical_anonymity(
    point: "ObservationPoint", journeys: dict[int, "Journey"]
) -> EmpiricalAnonymity:
    """Resolve an observation point's capture against journey ground truth.

    Every content tag the adversary saw (ingress or egress) is looked up in
    the journey map; the true origin hosts and delivered destinations form
    the *empirical* sender/receiver anonymity sets at that vantage point.
    Tags without a journey (unsampled, or control traffic) count as
    observed but contribute no labels.
    """
    tags = {obs.content_tag for obs in point.ingress()}
    tags.update(obs.content_tag for obs in point.egress())
    senders: set[str] = set()
    receivers: set[str] = set()
    labeled = 0
    for tag in tags:
        journey = journeys.get(tag)
        if journey is None:
            continue
        labeled += 1
        origin = journey.origin()
        if origin is not None:
            senders.add(origin)
        receivers.update(journey.delivered_to())
    return EmpiricalAnonymity(
        switch=point.switch_name,
        observed_tags=len(tags),
        labeled_tags=labeled,
        true_senders=frozenset(senders),
        true_receivers=frozenset(receivers),
    )
