"""The resilience scorecard: what survived the faults, measured.

One chaos run produces one scorecard — a plain JSON-ready dict covering:

* **availability** per channel and overall (probe datagrams answered over
  probe datagrams sent),
* **loss accounting** (link drops, dead-switch drops, blocked packet-ins),
* **repair behaviour** (repairs completed/parked, resyncs, repair-latency
  percentiles from the ``mic.repair`` span log),
* **control-plane robustness** (flow-mods sent/lost/retried),
* **anonymity under churn** (the ground-truth correlation attacker's
  expected accuracy at a compromised MN),
* **verification** (violations found by the static checker afterwards).

Everything is derived from simulated state, so the same seed yields the
same scorecard byte for byte (`` scorecard_json`` sorts keys).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional

from ..obs.metrics import Histogram

__all__ = [
    "ChannelProbeStats",
    "build_scorecard",
    "format_scorecard",
    "scorecard_json",
]


@dataclass
class ChannelProbeStats:
    """Probe accounting for one channel: sent vs answered datagrams."""

    channel_id: int
    initiator: str
    responder: str
    sent: int = 0
    answered: int = 0

    @property
    def availability(self) -> float:
        """Fraction of probes that came back (1.0 when nothing was sent)."""
        return self.answered / self.sent if self.sent else 1.0

    def to_dict(self) -> dict[str, Any]:
        """The scorecard's JSON form for this channel."""
        return {
            "channel_id": self.channel_id,
            "initiator": self.initiator,
            "responder": self.responder,
            "probes_sent": self.sent,
            "probes_answered": self.answered,
            "availability": self.availability,
        }


def _latency_summary(durations: list[float]) -> dict[str, float]:
    hist = Histogram()
    for d in durations:
        hist.observe(d)
    return hist.summary(bucket_bounds=None)


def build_scorecard(
    dep,
    probes: list[ChannelProbeStats],
    schedule,
    attacker: Optional[Any] = None,
    verification=None,
) -> dict[str, Any]:
    """Assemble the scorecard dict from a finished chaos deployment.

    ``dep`` is the :class:`~repro.core.deployment.MicDeployment`;
    ``probes`` the per-channel probe stats; ``schedule`` the attached
    :class:`~repro.faults.FaultSchedule`; ``attacker`` an optional
    :class:`~repro.attacks.correlation.GroundTruthCorrelation`;
    ``verification`` an optional post-convergence
    :class:`~repro.analysis.VerificationReport`.
    """
    net, ctrl, mic = dep.net, dep.ctrl, dep.mic
    total_sent = sum(p.sent for p in probes)
    total_answered = sum(p.answered for p in probes)
    link_drops = sum(
        ch.stats.drops
        for link in net.links
        for ch in (link.forward, link.reverse)
    )
    dead_drops = sum(sw.packets_dropped_dead for sw in net.switches())
    repair_durations = (
        dep.obs.spans.durations("mic.repair") if dep.obs is not None else []
    )
    card: dict[str, Any] = {
        "seed": schedule.seed,
        "topology": net.topo.name,
        "sim_time_s": net.sim.now,
        "faults": {
            "specs": len(schedule.specs),
            "timeline": [
                {"at_s": t, "event": desc} for t, desc in schedule.timeline()
            ],
            "flowmods_lost": schedule.flowmods_lost,
            "flowmods_delayed": schedule.flowmods_delayed,
        },
        "availability": {
            "overall": (total_answered / total_sent) if total_sent else 1.0,
            "channels": [p.to_dict() for p in probes],
        },
        "loss": {
            "link_drops": link_drops,
            "dead_switch_drops": dead_drops,
            "packet_ins_blocked": ctrl.packet_ins_blocked,
        },
        "repair": {
            "completed": mic.repairs_completed,
            "parked_events": mic.repairs_parked,
            "parked_remaining": mic.parked_flows,
            "resyncs_completed": mic.resyncs_completed,
            "latency_s": _latency_summary(repair_durations),
        },
        "control_plane": {
            "flow_mods_sent": ctrl.flow_mods_sent,
            "flow_mods_lost": ctrl.flow_mods_lost,
            "flow_mods_retried": ctrl.flow_mods_retried,
            "detector_events": ctrl.detector.events_delivered,
            "detection_latency_s": ctrl.detector.latency_s,
        },
        "anonymity": {
            "strategy": getattr(
                getattr(mic, "strategy", None), "name", "mic"
            ),
            "rotations_completed": getattr(
                getattr(mic, "strategy", None), "rotations_completed", 0
            ),
            "rotation_installs": getattr(
                getattr(mic, "strategy", None), "rotation_installs", 0
            ),
        },
    }
    # Sharded control plane only (>= 2 shards): the unsharded and 1-shard
    # runs keep the card byte-identical to the golden-pinned shape.
    if getattr(mic, "n_shards", 1) >= 2:
        card["controlplane"] = {
            "shards": mic.n_shards,
            "shards_alive": len(mic.alive_shards()),
            "failovers": mic.failovers,
            "channels_adopted": mic.channels_adopted,
            "flows_reparked": mic.flows_reparked,
            "repairs_rescheduled": mic.repairs_rescheduled,
            "remote_installs": mic.remote_installs,
            "requests_by_shard": {
                str(s.shard_id): s.requests_served for s in mic.shards
            },
            "installs_by_shard": {
                str(s.shard_id): s.installs_issued for s in mic.shards
            },
            "channels_by_shard": {
                str(s.shard_id): len(s.channels) for s in mic.shards
            },
        }
    if attacker is not None:
        card["attacker"] = {
            "expected_accuracy": attacker.expected_accuracy,
            "match_rate": attacker.match_rate,
            "total_ingress": attacker.total_ingress,
            "decoy_candidates": attacker.decoy_candidates,
            "true_candidates": attacker.true_candidates,
        }
    if verification is not None:
        card["verification"] = {
            "ok": not verification.violations,
            "violations": len(verification.violations),
        }
    return card


def scorecard_json(card: dict[str, Any]) -> str:
    """Deterministic JSON form (sorted keys, fixed indent)."""
    return json.dumps(card, sort_keys=True, indent=2)


def format_scorecard(card: dict[str, Any]) -> str:
    """Human-readable scorecard summary."""
    lines = [
        f"resilience scorecard — {card['topology']} seed={card['seed']} "
        f"t={card['sim_time_s']:.3f}s",
        f"  faults injected: {card['faults']['specs']} specs, "
        f"{len(card['faults']['timeline'])} timed events",
        f"  availability: {card['availability']['overall']:.4f} overall",
    ]
    for chp in card["availability"]["channels"]:
        lines.append(
            f"    ch{chp['channel_id']} {chp['initiator']}->{chp['responder']}: "
            f"{chp['availability']:.4f} "
            f"({chp['probes_answered']}/{chp['probes_sent']})"
        )
    loss = card["loss"]
    lines.append(
        f"  losses: {loss['link_drops']} link drops, "
        f"{loss['dead_switch_drops']} dead-switch drops, "
        f"{loss['packet_ins_blocked']} blocked packet-ins"
    )
    rep = card["repair"]
    lat = rep["latency_s"]
    lines.append(
        f"  repairs: {rep['completed']} completed, "
        f"{rep['parked_events']} parked ({rep['parked_remaining']} still), "
        f"{rep['resyncs_completed']} resyncs"
    )
    if lat["count"]:
        lines.append(
            f"    repair latency: p50={lat['p50']:.4f}s "
            f"p95={lat['p95']:.4f}s max={lat['max']:.4f}s"
        )
    cp = card["control_plane"]
    lines.append(
        f"  control plane: {cp['flow_mods_sent']} mods sent, "
        f"{cp['flow_mods_lost']} lost, {cp['flow_mods_retried']} retried"
    )
    if "controlplane" in card:
        sh = card["controlplane"]
        lines.append(
            f"  shards: {sh['shards_alive']}/{sh['shards']} alive, "
            f"{sh['failovers']} failovers, "
            f"{sh['channels_adopted']} channels adopted, "
            f"{sh['remote_installs']} remote installs"
        )
    anon = card.get("anonymity")
    if anon:
        lines.append(
            f"  anonymity: strategy={anon['strategy']}, "
            f"{anon['rotations_completed']} rotations "
            f"({anon['rotation_installs']} rotation installs)"
        )
    if "attacker" in card:
        atk = card["attacker"]
        lines.append(
            f"  attacker: expected accuracy "
            f"{atk['expected_accuracy']:.4f} over "
            f"{atk['total_ingress']} ingress packets"
        )
    if "verification" in card:
        ver = card["verification"]
        status = "ok" if ver["ok"] else f"{ver['violations']} violations"
        lines.append(f"  verification: {status}")
    return "\n".join(lines)
