"""docs/anonymity.md stays in sync with the registries, both ways."""

import pathlib

from repro.anonymity import STRATEGIES, format_strategy_table
from repro.attacks import ATTACKS, format_attack_table

DOC = pathlib.Path(__file__).resolve().parents[2] / "docs" / "anonymity.md"


def _embedded_table(marker: str) -> str:
    """The marker-delimited table embedded in docs/anonymity.md."""
    begin, end = f"<!-- {marker}:begin -->", f"<!-- {marker}:end -->"
    text = DOC.read_text(encoding="utf-8")
    assert begin in text and end in text, f"{begin} ... {end} markers missing"
    return text.split(begin, 1)[1].split(end, 1)[0].strip()


def test_strategy_table_matches_registry_exactly():
    assert _embedded_table("strategy-table") == format_strategy_table(), (
        "docs/anonymity.md strategy table is stale — regenerate with "
        "`python -m repro.anonymity` and paste between the markers"
    )


def test_attack_table_matches_registry_exactly():
    assert _embedded_table("attack-table") == format_attack_table(), (
        "docs/anonymity.md attack table is stale — regenerate with "
        "`python -m repro.attacks table` and paste between the markers"
    )


def test_every_registry_entry_has_a_doc_row_and_vice_versa():
    strategy_rows = [
        line for line in _embedded_table("strategy-table").splitlines()
        if line.startswith("| `")
    ]
    assert len(strategy_rows) == len(STRATEGIES)
    attack_rows = [
        line for line in _embedded_table("attack-table").splitlines()
        if line.startswith("| `")
    ]
    assert len(attack_rows) == len(ATTACKS)
