"""The paper's Fig 3 routing-collision scenarios, as regression tests.

Fig 3 enumerates three ways naive header rewriting corrupts routing:

(a) two m-flows rewritten *to* the same triple at the same switch,
(b) an m-flow rewritten into the triple of an existing (common) flow,
(c) two flows arriving at a shared switch already carrying the same triple,
    with neither rewritten there.

Each test constructs the conditions under which the naive scheme would
collide and verifies MIC's avoidance mechanism (flow-ID classes, CF/MF
categories, per-MN disjoint label sets) prevents it on the live fabric.
"""

import itertools


from repro.core import MIC_PRIORITY, CommonFlowTagger, MimicController
from repro.net import Network, fat_tree
from repro.sdn import Controller, L3ShortestPathApp


def build(seed=0):
    net = Network(fat_tree(4), seed=seed)
    ctrl = Controller(net)
    mic = ctrl.register(MimicController())
    l3 = ctrl.register(L3ShortestPathApp())
    return net, ctrl, mic, l3


def establish_many(net, mic, pairs, **kw):
    def go():
        for a, b in pairs:
            yield from mic.establish(a, b, service_port=80, **kw)

    proc = net.sim.process(go())
    net.run(until=proc)


def mic_keys_by_switch(net):
    keys = {}
    for sw in net.switches():
        keys[sw.name] = [
            e.match.key()
            for e in sw.table.entries
            if e.priority == MIC_PRIORITY
        ]
    return keys


class TestFig3a:
    """Two m-flows must never be rewritten to the same triple anywhere."""

    def test_many_flows_through_shared_fabric(self):
        net, ctrl, mic, l3 = build()
        # Lots of channels between overlapping pods: every core/agg switch
        # carries rewritten addresses from many different m-flows.
        pairs = [(f"h{a}", f"h{b}") for a, b in
                 itertools.islice(itertools.permutations(range(1, 17), 2), 24)]
        establish_many(net, mic, pairs, n_mns=3)
        for sw, keys in mic_keys_by_switch(net).items():
            assert len(keys) == len(set(keys)), f"Fig 3(a) collision at {sw}"

    def test_rewrite_targets_distinct_per_mn(self):
        """Directly: the *output* addresses written by one MN for different
        flows are pairwise distinct triples."""
        net, ctrl, mic, l3 = build()
        pairs = [("h1", f"h{i}") for i in range(9, 17)]
        establish_many(net, mic, pairs, n_mns=3)
        by_mn: dict[str, list] = {}
        for ch in mic.channels.values():
            for plan in ch.flows:
                for i, pos in enumerate(plan.mn_positions):
                    out_addr = plan.fwd_addrs[i + 1]
                    by_mn.setdefault(plan.walk[pos], []).append(
                        (out_addr.src_ip, out_addr.dst_ip, out_addr.mpls,
                         out_addr.sport, out_addr.dport)
                    )
        for mn, triples in by_mn.items():
            assert len(triples) == len(set(triples)), f"duplicate write at {mn}"


class TestFig3b:
    """An m-flow must never occupy an existing common flow's match."""

    def test_m_addresses_disjoint_from_tagged_common_flows(self):
        net, ctrl, mic, l3 = build()
        # Wire and CF-tag common flows everywhere first.
        l3.wire_all_pairs()
        net.run()
        tagger = CommonFlowTagger(mic)
        tagger.tag_all_recorded(l3)
        net.run()
        # Now establish m-flows across the same fabric.
        establish_many(net, mic, [("h1", "h16"), ("h2", "h15"), ("h3", "h14")],
                       n_mns=3)
        # Every labeled m-address is in an MN's class; every CF label is in
        # the common class; the classes are disjoint by construction.
        for ch in mic.channels.values():
            for plan in ch.flows:
                for addr in plan.fwd_addrs + plan.rev_addrs:
                    if addr.mpls is not None:
                        assert not mic.labels.is_common(addr.mpls), (
                            "Fig 3(b): m-flow drew a common-category label"
                        )

    def test_full_table_uniqueness_with_cf_and_mf(self):
        """On the actual switches: no (match-key) overlap between CF-tag
        rules and m-flow rules."""
        net, ctrl, mic, l3 = build()
        l3.wire_all_pairs()
        net.run()
        CommonFlowTagger(mic).tag_all_recorded(l3)
        net.run()
        establish_many(net, mic, [("h1", "h16"), ("h4", "h13")], n_mns=3)
        for sw in net.switches():
            keys = [e.match.key() for e in sw.table.entries
                    if e.priority >= 20]  # tag + mic priorities
            assert len(keys) == len(set(keys)), f"Fig 3(b) overlap at {sw.name}"


class TestFig3c:
    """Flows arriving at a shared switch with addresses written by
    *different* MNs can never look identical: per-MN label sets are
    disjoint."""

    def test_cross_mn_triples_never_equal(self):
        net, ctrl, mic, l3 = build()
        pairs = [(f"h{a}", f"h{17 - a}") for a in range(1, 9)]
        establish_many(net, mic, pairs, n_mns=3)
        # Collect every labeled segment address, tagged by the MN that
        # wrote it.
        writes: list[tuple[str, tuple]] = []
        for ch in mic.channels.values():
            for plan in ch.flows:
                for i, pos in enumerate(plan.mn_positions[:-1]):
                    addr = plan.fwd_addrs[i + 1]
                    if addr.mpls is not None:
                        writes.append(
                            (plan.walk[pos],
                             (addr.src_ip, addr.dst_ip, addr.mpls))
                        )
        for (mn_a, t_a), (mn_b, t_b) in itertools.combinations(writes, 2):
            if mn_a != mn_b:
                assert t_a != t_b, (
                    f"Fig 3(c): {mn_a} and {mn_b} wrote identical triples"
                )

    def test_label_ownership_separates_mns(self):
        """The mechanism itself: any two labels drawn by different MNs
        classify to their own (different) owners."""
        net, ctrl, mic, l3 = build()
        rng = net.sim.rng("t")
        switches = net.topo.switches()[:6]
        labels = {
            sw: [
                mic.mn_spaces[sw].draw_label(
                    fid, net.host("h1").ip, net.host("h2").ip, rng
                )
                for fid in range(10)
            ]
            for sw in switches
        }
        for sw, drawn in labels.items():
            for label in drawn:
                assert mic.labels.owner_of(label) == sw
