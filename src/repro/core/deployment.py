"""One-call MIC deployment.

Examples, tests and downstream users all assemble the same stack: a
network, a controller, the MIC app and baseline routing.  ``deploy_mic``
does it in one line and returns a :class:`MicDeployment` facade with the
common conveniences (endpoints, servers, hidden services, running).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.network import Network
from ..net.params import NetParams
from ..net.topology import Topology, fat_tree
from ..obs import JourneyRecorder, Observer
from ..sdn.controller import Controller
from ..sdn.l3app import L3ShortestPathApp
from .client import MicEndpoint, MicServer
from .commonflows import CommonFlowTagger
from .controller import MimicController

__all__ = ["MicDeployment", "deploy_mic"]


@dataclass
class MicDeployment:
    """A ready-to-use MIC-enabled network."""

    net: Network
    ctrl: Controller
    mic: MimicController
    l3: L3ShortestPathApp
    #: attached observer when deployed with ``observe=True``, else None
    obs: Optional[Observer] = None
    #: attached journey recorder when deployed with ``journey=True``, else None
    journey: Optional[JourneyRecorder] = None

    @property
    def sim(self):
        """The deployment's simulator."""
        return self.net.sim

    # -- conveniences ----------------------------------------------------
    def endpoint(self, host_name: str) -> MicEndpoint:
        """The user-end module for a host (the initiator side)."""
        return MicEndpoint(self.net.host(host_name), self.mic)

    def server(self, host_name: str, port: int) -> MicServer:
        """A MIC-aware server on a host (the responder side)."""
        return MicServer(self.net.host(host_name), port)

    def hidden_service(self, nickname: str, host_name: str, port: int) -> MicServer:
        """Register a hidden service and start its server in one step."""
        self.mic.register_hidden_service(nickname, host_name, port)
        return self.server(host_name, port)

    def tag_common_flows(self) -> CommonFlowTagger:
        """CF-tag every common-flow path installed so far."""
        tagger = CommonFlowTagger(self.mic)
        tagger.tag_all_recorded(self.l3)
        return tagger

    def run(self, until=None):
        """Run the simulation (see :meth:`Simulator.run`)."""
        return self.net.run(until=until)

    def run_for(self, seconds: float):
        """Advance the clock by ``seconds`` from now."""
        return self.net.run(until=self.sim.now + seconds)


def deploy_mic(
    topo: Optional[Topology] = None,
    seed: int = 0,
    params: Optional[NetParams] = None,
    pre_wire: bool = False,
    mic_kwargs: Optional[dict] = None,
    observe: bool = False,
    journey: bool = False,
    journey_kwargs: Optional[dict] = None,
    controller_kwargs: Optional[dict] = None,
    faults=None,
    shards: int = 0,
) -> MicDeployment:
    """Stand up a MIC-enabled network on ``topo`` (default: the paper's
    4-ary fat-tree).

    ``pre_wire=True`` proactively installs baseline routes for every host
    pair (no packet-ins later); otherwise the L3 app wires reactively.
    ``observe=True`` attaches a :class:`repro.obs.Observer` before any
    traffic runs; it is exposed as the deployment's ``obs`` field.
    ``journey=True`` additionally attaches a
    :class:`repro.obs.JourneyRecorder` (``journey_kwargs`` forwards
    ``sample_rate``/``predicate``/``flight``), exposed as ``journey`` —
    when an observer is also attached the recorder registers on it too.
    ``controller_kwargs`` forwards failure-detection and install-retry
    knobs to the :class:`~repro.sdn.controller.Controller`; ``faults``
    attaches a :class:`repro.faults.FaultSchedule` (its injected events
    are scheduled before any traffic runs).
    ``shards`` ≥ 1 deploys the sharded control plane
    (:class:`repro.controlplane.MimicControllerCluster`) with that many
    controller shards instead of the plain MC; ``mic_kwargs`` then also
    accepts the cluster knobs (``cpu_model``, ``flowmod_cpu_s``,
    ``ownership_seed``).  ``shards=0`` (default) keeps today's single
    unsharded controller.
    """
    net = Network(topo or fat_tree(4), params=params or NetParams(), seed=seed)
    ctrl = Controller(net, **(controller_kwargs or {}))
    if shards:
        from ..controlplane import MimicControllerCluster

        mic = ctrl.register(
            MimicControllerCluster(n_shards=shards, **(mic_kwargs or {}))
        )
    else:
        mic = ctrl.register(MimicController(**(mic_kwargs or {})))
    l3 = ctrl.register(L3ShortestPathApp())
    obs = Observer.attach(net, mic=mic, controller=ctrl) if observe else None
    rec = None
    if journey:
        rec = JourneyRecorder.attach(net, **(journey_kwargs or {}))
        if obs is not None:
            obs.journey = rec
    if faults is not None:
        faults.attach(net, ctrl)
    if pre_wire:
        l3.wire_all_pairs()
        net.run()
    return MicDeployment(net=net, ctrl=ctrl, mic=mic, l3=l3, obs=obs, journey=rec)
