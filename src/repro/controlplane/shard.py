"""One Mimic Controller shard.

A shard *is* a :class:`~repro.core.controller.MimicController` — same
planning, repair, park and resync machinery — scoped to the channels it
owns and wired into a :class:`~repro.controlplane.cluster.MimicControllerCluster`:

* **Shard 0** attaches through the unchanged inherited path, building the
  MAGA namespace (label space, per-MN hashes, restrictions, registry) on
  the canonical ``mic-controller`` RNG stream.  This is what makes a
  1-shard cluster byte-identical to the plain controller.
* **Shards 1..N-1** attach as *secondaries*: they adopt the primary's
  shared namespace objects by reference and draw their own planning
  randomness from a per-shard stream (``mic-controller/shard{i}``), so
  adding shards never perturbs shard 0's draws.
* Every shard's flow IDs come from its own residue class of the shared
  value space (:class:`~repro.controlplane.ownership.PartitionedFlowIdAllocator`),
  and every install the shard emits is routed through the cluster to the
  target switch's owning shard.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.channel import MFlowPlan
from ..core.controller import MimicController
from ..sdn.controller import Controller, ControllerApp
from .ownership import PartitionedFlowIdAllocator

if TYPE_CHECKING:
    from .cluster import MimicControllerCluster

__all__ = ["MimicShard"]


class MimicShard(MimicController):
    """A cluster member; never registered on the controller directly."""

    def __init__(self, shard_id: int, cluster: "MimicControllerCluster", **mic_kwargs):
        super().__init__(**mic_kwargs)
        self.shard_id = shard_id
        self.cluster = cluster
        self.alive = True
        #: flow-mods this shard issued on behalf of the cluster (fan-out
        #: target side; a remote install counts on the *owning* shard)
        self.installs_issued = 0

    # -- attach ----------------------------------------------------------
    def attach_secondary(
        self, controller: Controller, primary: "MimicShard"
    ) -> None:
        """Join the cluster next to an already-attached primary.

        Mirrors :meth:`MimicController.attach` but adopts the primary's
        namespace state instead of rebuilding it: the label space, per-MN
        hash spaces, restrictions, collision registry, hidden-service map
        and client-key/port books are *cluster-wide* objects shared by
        reference.  Only the planning RNG and the flow-ID partition are
        shard-local.
        """
        ControllerApp.attach(self, controller)
        self.net = controller.network
        self.sim = controller.sim
        self.rng = self.sim.rng(f"mic-controller/shard{self.shard_id}")
        self.labels = primary.labels
        self.mn_spaces = primary.mn_spaces
        self.restrictions = primary.restrictions
        self.registry = primary.registry
        self.hidden = primary.hidden
        self._client_keys = primary._client_keys
        self._used_sports = primary._used_sports
        self._ip_to_mac = primary._ip_to_mac
        self._ip_to_host = primary._ip_to_host
        flow_id_values = next(iter(self.mn_spaces.values())).flow_id_values
        self.flow_ids = PartitionedFlowIdAllocator(
            flow_id_values, self.shard_id, self.cluster.n_shards
        )
        self.strategy.bind(self)
        if self.idle_timeout_s is not None:
            self.sim.process(
                self._expiry_loop(), name=f"mic.expiry.s{self.shard_id}"
            )

    # -- cluster seams ----------------------------------------------------
    def _release_flow(self, channel_id: int, plan: MFlowPlan) -> None:
        # A flow adopted across a failover may carry an ID from another
        # shard's residue class; route the release to its home partition.
        self.registry.release_owner(f"ch{channel_id}/c{plan.cookie}")
        alloc = self.cluster.allocator_for(plan.flow_id)
        if alloc.is_live(plan.flow_id):
            alloc.release(plan.flow_id)

    def _dispatch_group(self, sw_name: str, group):
        return self.cluster.dispatch_group(self, sw_name, group)

    def _dispatch_batch(self, sw_name: str, batch):
        return self.cluster.dispatch_batch(self, sw_name, batch)

    def _dispatch_install(self, sw_name: str, entry):
        return self.cluster.dispatch_install(self, sw_name, entry)

    def _request_cpu(self, cpu: float):
        yield from self.cluster.request_cpu(self, cpu)
