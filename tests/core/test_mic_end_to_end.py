"""End-to-end integration tests for MIC on the simulated fabric."""

import pytest

from repro.core import MicEndpoint, MicServer, MimicController, MIC_PRIORITY
from repro.net import Network, fat_tree
from repro.sdn import Controller, L3ShortestPathApp


def build(topo=None, seed=0, **mic_kw):
    net = Network(topo or fat_tree(4), seed=seed)
    ctrl = Controller(net)
    mic = ctrl.register(MimicController(**mic_kw))
    ctrl.register(L3ShortestPathApp())
    return net, ctrl, mic


def run_proc(net, gen):
    result = {}

    def wrapper():
        result["value"] = yield from gen
        return result["value"]

    net.sim.process(wrapper())
    net.run(until=30.0)
    return result.get("value")


class TestEstablishment:
    def test_grant_shape(self):
        net, ctrl, mic = build()
        grant = run_proc(net, mic.establish("h1", "h16", service_port=80,
                                            n_flows=2, n_mns=3))
        assert grant.flow_count == 2
        assert mic.live_channels == 1
        for fg in grant.flows:
            assert fg.entry_ip != net.host("h16").ip  # entry hides responder
            assert 1024 <= fg.entry_port <= 65535
            assert 20000 <= fg.source_port <= 60000

    def test_mn_count_respected(self):
        net, ctrl, mic = build()
        run_proc(net, mic.establish("h1", "h16", service_port=80, n_mns=4))
        plan = next(iter(mic.channels.values())).flows[0]
        assert len(plan.mn_positions) == 4

    def test_same_host_rejected(self):
        net, ctrl, mic = build()
        from repro.core.controller import EstablishError

        with pytest.raises(EstablishError):
            run_proc(net, mic.establish("h1", "h1", service_port=80))

    def test_unknown_responder_rejected(self):
        net, ctrl, mic = build()
        from repro.core.controller import EstablishError

        with pytest.raises(EstablishError):
            run_proc(net, mic.establish("h1", "no-such-service"))

    def test_path_stretched_when_short(self):
        """h1 and h2 share an edge switch (1 switch on the shortest path);
        asking for 3 MNs must stretch the walk (Sec IV-B2)."""
        net, ctrl, mic = build()
        run_proc(net, mic.establish("h1", "h2", service_port=80, n_mns=3))
        plan = next(iter(mic.channels.values())).flows[0]
        assert len(plan.mn_positions) == 3
        switch_visits = [n for n in plan.walk if net.topo.kind(n) == "switch"]
        assert len(switch_visits) >= 3

    def test_flow_ids_unique_across_channels(self):
        net, ctrl, mic = build()

        def many():
            for i in range(2, 10):
                yield from mic.establish("h1", f"h{i + 7}", service_port=80,
                                         n_flows=2)

        run_proc(net, many())
        fids = [p.flow_id for ch in mic.channels.values() for p in ch.flows]
        assert len(set(fids)) == len(fids)


class TestDataPath:
    def _channel(self, net, mic, initiator="h1", responder="h16", **kw):
        server = MicServer(net.host(responder), 80)
        endpoint = MicEndpoint(net.host(initiator), mic)
        result = {}

        def client():
            stream = yield from endpoint.connect(responder, service_port=80, **kw)
            result["client"] = stream

        def srv():
            stream = yield server.accept()
            result["server"] = stream

        net.sim.process(client())
        net.sim.process(srv())
        return endpoint, server, result

    def test_roundtrip_single_flow(self):
        net, ctrl, mic = build()
        endpoint, server, result = self._channel(net, mic)

        def talk():
            while "client" not in result:
                yield net.sim.timeout(0.01)
            result["client"].send(b"hello mic")
            while "server" not in result:
                yield net.sim.timeout(0.01)
            data = yield from result["server"].recv_exactly(9)
            result["server"].send(data.upper())
            result["echo"] = yield from result["client"].recv_exactly(9)

        net.sim.process(talk())
        net.run(until=30.0)
        assert result["echo"] == b"HELLO MIC"

    def test_responder_sees_fake_source(self):
        """The delivered packet carries a mimic source (paper Fig 2: the
        last switch restores only the destination)."""
        net, ctrl, mic = build()
        endpoint, server, result = self._channel(net, mic)

        def talk():
            while "client" not in result:
                yield net.sim.timeout(0.01)
            result["client"].send(b"x")
            while "server" not in result:
                yield net.sim.timeout(0.01)
            yield from result["server"].recv_exactly(1)

        net.sim.process(talk())
        net.run(until=30.0)
        server_conn = result["server"].conns[0]
        assert server_conn.remote_ip != net.host("h1").ip

    def test_large_transfer_multi_flow(self):
        net, ctrl, mic = build()
        endpoint, server, result = self._channel(net, mic, n_flows=3)
        payload = bytes(range(256)) * 400  # 100 KiB

        def talk():
            while "client" not in result:
                yield net.sim.timeout(0.01)
            assert result["client"].flow_count == 3
            result["client"].send(payload)
            while "server" not in result:
                yield net.sim.timeout(0.01)
            result["got"] = yield from result["server"].recv_exactly(len(payload))

        net.sim.process(talk())
        net.run(until=60.0)
        assert result["got"] == payload
        # All three m-flow connections carried some bytes.
        for conn in result["client"].conns:
            assert conn.bytes_sent > 0

    def test_intermediate_switches_never_see_real_pair(self):
        """Unlinkability: no switch between the first and last MN ever
        forwards a packet carrying both real addresses (Sec V)."""
        net, ctrl, mic = build()
        endpoint, server, result = self._channel(net, mic, n_mns=3)

        def talk():
            while "client" not in result:
                yield net.sim.timeout(0.01)
            result["client"].send(b"secret")
            while "server" not in result:
                yield net.sim.timeout(0.01)
            yield from result["server"].recv_exactly(6)
            result["server"].send(b"answer")
            yield from result["client"].recv_exactly(6)

        net.sim.process(talk())
        net.run(until=30.0)
        h1_ip, h16_ip = str(net.host("h1").ip), str(net.host("h16").ip)
        plan = next(iter(mic.channels.values())).flows[0]
        first_mn, last_mn = plan.mn_names[0], plan.mn_names[-1]
        for rec in net.trace.by_category("switch.fwd"):
            if rec.node in (first_mn, last_mn):
                continue
            pair = (rec["src_ip"], rec["dst_ip"])
            assert pair != (h1_ip, h16_ip) and pair != (h16_ip, h1_ip), (
                f"real pair visible at {rec.node}"
            )

    def test_mpls_labels_on_interior_segments_only(self):
        net, ctrl, mic = build()
        endpoint, server, result = self._channel(net, mic, n_mns=3)

        def talk():
            while "client" not in result:
                yield net.sim.timeout(0.01)
            result["client"].send(b"x")
            while "server" not in result:
                yield net.sim.timeout(0.01)
            yield from result["server"].recv_exactly(1)

        net.sim.process(talk())
        net.run(until=30.0)
        # Hosts never receive a labeled packet.
        for rec in net.trace.by_category("host.rx"):
            pass  # host.rx doesn't log mpls; check tx links into hosts below
        for rec in net.trace.by_category("link.tx"):
            src, dst = rec.node.split("->")
            if dst.startswith("h"):
                assert rec["mpls"] is None, f"labeled packet delivered to {dst}"

    def test_hidden_service_by_nickname(self):
        net, ctrl, mic = build()
        mic.register_hidden_service("search", "h16", 80)
        server = MicServer(net.host("h16"), 80)
        endpoint = MicEndpoint(net.host("h1"), mic)
        result = {}

        def client():
            stream = yield from endpoint.connect("search")
            stream.send(b"query")
            result["reply"] = yield from stream.recv_exactly(5)

        def srv():
            stream = yield server.accept()
            data = yield from stream.recv_exactly(5)
            stream.send(data[::-1])

        net.sim.process(client())
        net.sim.process(srv())
        net.run(until=30.0)
        assert result["reply"] == b"yreuq"

    def test_channel_reuse_returns_same_stream(self):
        net, ctrl, mic = build()
        server = MicServer(net.host("h16"), 80)
        endpoint = MicEndpoint(net.host("h1"), mic)
        result = {}

        def client():
            s1 = yield from endpoint.connect("h16", service_port=80, reuse=True)
            s2 = yield from endpoint.connect("h16", service_port=80, reuse=True)
            result["same"] = s1 is s2

        net.sim.process(client())
        net.run(until=30.0)
        assert result["same"] is True
        assert mic.live_channels == 1


class TestLifecycle:
    def test_teardown_removes_rules_and_recycles(self):
        net, ctrl, mic = build()
        grant = run_proc(net, mic.establish("h1", "h16", service_port=80))
        assert mic.flow_ids.live_count == 1
        assert mic.registry.total_keys() > 0
        mic.teardown(grant.channel_id)
        net.run(until=net.sim.now + 1.0)
        assert mic.live_channels == 0
        assert mic.flow_ids.live_count == 0
        assert mic.registry.total_keys() == 0
        # No MIC-priority rules left anywhere.
        for sw in net.switches():
            assert not any(e.priority == MIC_PRIORITY for e in sw.table.entries)

    def test_teardown_unknown_channel_noop(self):
        net, ctrl, mic = build()
        mic.teardown(424242)

    def test_idle_expiry(self):
        net, ctrl, mic = build(idle_timeout_s=5.0)
        observed = {}

        def scenario():
            yield from mic.establish("h1", "h16", service_port=80)
            observed["live_after_establish"] = mic.live_channels
            yield net.sim.timeout(12.0)
            observed["live_after_idle"] = mic.live_channels

        net.sim.process(scenario())
        net.run(until=30.0)
        assert observed == {"live_after_establish": 1, "live_after_idle": 0}

    def test_notify_keeps_channel_alive(self):
        net, ctrl, mic = build(idle_timeout_s=5.0)
        server = MicServer(net.host("h16"), 80)
        endpoint = MicEndpoint(net.host("h1"), mic)
        endpoint.notify_interval_s = 2.0
        result = {}

        def client():
            stream = yield from endpoint.connect("h16", service_port=80)
            result["stream"] = stream

        net.sim.process(client())
        net.run(until=20.0)
        assert mic.live_channels == 1  # notifications kept it alive

    def test_client_shutdown_message(self):
        net, ctrl, mic = build()
        server = MicServer(net.host("h16"), 80)
        endpoint = MicEndpoint(net.host("h1"), mic)

        def client():
            stream = yield from endpoint.connect("h16", service_port=80)
            yield from endpoint.shutdown(stream)

        net.sim.process(client())
        net.run(until=30.0)
        assert mic.live_channels == 0


class TestCollisionFreedom:
    def test_match_keys_unique_per_switch_under_load(self):
        """The paper's central correctness invariant, checked on the actual
        flow tables after establishing many channels."""
        net, ctrl, mic = build()

        def many():
            pairs = [(f"h{i}", f"h{17 - i}") for i in range(1, 8)]
            for a, b in pairs:
                yield from mic.establish(a, b, service_port=80, n_flows=2,
                                         n_mns=3)

        run_proc(net, many())
        assert mic.live_channels == 7
        for sw in net.switches():
            keys = [
                (e.match.key())
                for e in sw.table.entries
                if e.priority == MIC_PRIORITY
            ]
            assert len(keys) == len(set(keys)), f"duplicate match on {sw.name}"

    def test_channels_with_decoys_stay_collision_free(self):
        net, ctrl, mic = build()

        def many():
            for i in range(2, 8):
                yield from mic.establish("h1", f"h{i + 8}", service_port=80,
                                         decoys=2)

        run_proc(net, many())
        for sw in net.switches():
            keys = [
                e.match.key()
                for e in sw.table.entries
                if e.priority in (MIC_PRIORITY, 60)
            ]
            assert len(keys) == len(set(keys))
