"""Network assembly: turn a :class:`Topology` into live simulated devices.

Owns the simulator, the trace log, the node registry and the port wiring.
Port numbering: hosts use NIC port 0; switch ports are numbered 1..degree in
the (stable) order the topology lists its edges.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator, TraceLog
from .addresses import IPv4Addr
from .host import Host
from .link import Link
from .node import Node
from .params import DEFAULT_PARAMS, NetParams
from .switch import Switch
from .topology import Topology

__all__ = ["Network"]


class Network:
    """Live instantiation of a topology on a DES kernel."""

    def __init__(
        self,
        topo: Topology,
        params: NetParams = DEFAULT_PARAMS,
        seed: int = 0,
        trace: Optional[TraceLog] = None,
    ):
        topo.validate()
        self.topo = topo
        self.params = params
        self.sim = Simulator(seed=seed)
        self.trace = trace if trace is not None else TraceLog()
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []
        #: (node_name, neighbor_name) -> local port number
        self.port_map: dict[tuple[str, str], int] = {}
        self._ip_index: dict[IPv4Addr, Host] = {}
        #: callbacks invoked as fn(a, b, up) on link state changes
        self.link_listeners: list = []
        #: callbacks invoked as fn(name, up) on switch crash/reboot
        self.switch_listeners: list = []
        self._link_index: dict[tuple[str, str], Link] = {}
        #: optional attached repro.net.hybrid.HybridEngine (None = pure packet)
        self.hybrid = None
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        g = self.topo.graph
        next_port: dict[str, int] = {}
        for name, data in g.nodes(data=True):
            if data["kind"] == "host":
                host = Host(
                    self.sim, self.trace, name, self.params, data["ip"], data["mac"]
                )
                self.nodes[name] = host
                self._ip_index[data["ip"]] = host
                next_port[name] = 0  # NIC port
            else:
                self.nodes[name] = Switch(self.sim, self.trace, name, self.params)
                next_port[name] = 1

        for a, b, edata in g.edges(data=True):
            pa, pb = next_port[a], next_port[b]
            next_port[a] += 1
            next_port[b] += 1
            self.port_map[(a, b)] = pa
            self.port_map[(b, a)] = pb
            link = Link(
                self.sim,
                self.trace,
                self.nodes[a],
                pa,
                self.nodes[b],
                pb,
                self.params,
                bandwidth_bps=edata.get("bandwidth_bps"),
                delay_s=edata.get("delay_s"),
            )
            self.links.append(link)
            self._link_index[(a, b)] = link
            self._link_index[(b, a)] = link

    # -- lookups ----------------------------------------------------------
    def node(self, name: str) -> Node:
        """Any node by name."""
        return self.nodes[name]

    def host(self, name: str) -> Host:
        """A host by name (TypeError if it is a switch)."""
        node = self.nodes[name]
        if not isinstance(node, Host):
            raise TypeError(f"{name} is not a host")
        return node

    def switch(self, name: str) -> Switch:
        """A switch by name (TypeError if it is a host)."""
        node = self.nodes[name]
        if not isinstance(node, Switch):
            raise TypeError(f"{name} is not a switch")
        return node

    def hosts(self) -> list[Host]:
        """All host devices."""
        return [self.nodes[n] for n in self.topo.hosts()]  # type: ignore[list-item]

    def switches(self) -> list[Switch]:
        """All switch devices."""
        return [self.nodes[n] for n in self.topo.switches()]  # type: ignore[list-item]

    def host_by_ip(self, addr: IPv4Addr) -> Optional[Host]:
        """The host owning an IP address, or None."""
        return self._ip_index.get(addr)

    def port(self, node: str, neighbor: str) -> int:
        """Local port number on ``node`` facing ``neighbor``."""
        return self.port_map[(node, neighbor)]

    def link_between(self, a: str, b: str) -> Link:
        """The link joining two adjacent nodes."""
        return self._link_index[(a, b)]

    def set_link_state(self, a: str, b: str, up: bool) -> None:
        """Bring a link down/up and notify listeners (port-status events)."""
        link = self.link_between(a, b)
        link.set_up(up)
        self.trace.emit(
            self.sim.now, "link.state", f"{a}<->{b}", up=up
        )
        for listener in list(self.link_listeners):
            listener(a, b, up)

    def set_switch_state(self, name: str, up: bool) -> None:
        """Crash or reboot a switch and notify listeners.

        A crash wipes the flow table, group table, and lookup cache
        (:meth:`Switch.crash`); the chassis then blackholes traffic until
        the matching reboot.  The adjacent links stay physically up — it is
        the controller's job to notice (heartbeat loss / chassis events) and
        to re-sync rules after the reboot.
        """
        sw = self.switch(name)
        if up == sw.alive:
            return
        lost = 0
        if up:
            sw.reboot()
        else:
            lost = sw.crash()
        self.trace.emit(
            self.sim.now, "switch.state", name, up=up, entries_lost=lost
        )
        for listener in list(self.switch_listeners):
            listener(name, up)

    # -- measurement helpers -------------------------------------------------
    def total_cpu_busy_s(self) -> float:
        """Sum of CPU-seconds booked across every node."""
        return sum(n.cpu.busy_s for n in self.nodes.values())

    def reset_cpu_meters(self) -> None:
        """Zero every node's CPU meter (start of a window)."""
        now = self.sim.now
        for n in self.nodes.values():
            n.cpu.reset(now)

    def run(self, until=None):
        """Run the simulation (see :meth:`Simulator.run`)."""
        return self.sim.run(until=until)
