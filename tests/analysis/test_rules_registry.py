"""Engine-level tests: registry, pragmas, baselines, reporters, CLI."""

import json
import textwrap

import pytest

from repro.analysis.baseline import Baseline, BaselineEntry, normalize_path
from repro.analysis.lint import lint_source, main as lint_main, run_lint
from repro.analysis.reporters import to_sarif
from repro.analysis.rules import (
    Severity,
    all_rules,
    explain,
    format_rule_table,
    get_rule,
    rule_ids,
)


def rules_of(source, **kwargs):
    return [f.rule for f in lint_source(textwrap.dedent(source), **kwargs)]


class TestRegistry:
    def test_full_registry_size_and_order(self):
        ids = rule_ids()
        assert len(ids) >= 8
        assert ids == sorted(ids)

    def test_expected_rules_present(self):
        ids = set(rule_ids())
        assert {
            "wall-clock", "unseeded-random", "set-iteration",
            "unnamed-rng-stream", "salted-hash", "mutable-default",
            "flowtable-encapsulation", "endpoint-leak",
        } <= ids

    def test_every_rule_fully_described(self):
        for rule in all_rules():
            assert rule.id and rule.summary
            assert rule.rationale.strip(), rule.id
            assert rule.example.strip(), rule.id
            assert rule.severity in (Severity.ERROR, Severity.WARNING)

    def test_get_rule_and_unknown(self):
        assert get_rule("wall-clock").id == "wall-clock"
        with pytest.raises(KeyError):
            get_rule("no-such-rule")

    def test_rule_table_lists_every_rule(self):
        table = format_rule_table()
        for rid in rule_ids():
            assert f"`{rid}`" in table


class TestExplain:
    @pytest.mark.parametrize("rid", rule_ids())
    def test_explain_every_registered_rule(self, rid, capsys):
        """`--explain <rule>` works for the whole registry (ISSUE gate)."""
        assert lint_main(["--explain", rid]) == 0
        out = capsys.readouterr().out
        assert rid in out
        assert "lint: allow" in out  # suppression help is part of the text

    def test_explain_unknown_rule_is_usage_error(self, capsys):
        assert lint_main(["--explain", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_explain_api_matches_rule_text(self):
        text = explain("salted-hash")
        rule = get_rule("salted-hash")
        assert rule.summary in text


class TestPragmas:
    def test_single_rule_allow(self):
        assert rules_of("""
            import time
            t = time.time()  # lint: allow(wall-clock)
        """) == []

    def test_multi_rule_allow_one_line(self):
        assert rules_of("""
            import time, random
            t = time.time(); x = random.random()  # lint: allow(wall-clock, unseeded-random)
        """) == []

    def test_allow_does_not_leak_to_other_rules(self):
        assert rules_of("""
            import time
            t = time.time()  # lint: allow(set-iteration)
        """) == ["wall-clock"]

    def test_allow_all(self):
        assert rules_of("""
            import time
            t = time.time()  # lint: allow(all)
        """) == []

    def test_file_allow_suppresses_everywhere(self):
        assert rules_of("""
            # lint: file-allow(wall-clock)
            import time
            a = time.time()
            b = time.monotonic()
        """) == []

    def test_file_allow_is_per_rule(self):
        assert rules_of("""
            # lint: file-allow(wall-clock)
            import time, random
            a = time.time()
            x = random.random()
        """) == ["unseeded-random"]


class TestEncapsulationRule:
    def test_private_access_outside_owner_flagged(self):
        findings = lint_source(
            "def f(table):\n    return table._entries\n",
            path="src/repro/net/switch.py",
        )
        assert [f.rule for f in findings] == ["flowtable-encapsulation"]

    def test_owner_file_untouched(self):
        findings = lint_source(
            "def f(self):\n    return self._entries\n",
            path="src/repro/net/flowtable.py",
        )
        assert findings == []

    def test_lookup_cache_attr_covered(self):
        findings = lint_source(
            "def f(t):\n    t._lookup_cache.clear()\n",
            path="src/repro/net/host.py",
        )
        assert [f.rule for f in findings] == ["flowtable-encapsulation"]


class TestBaseline:
    def _write_bad_module(self, tmp_path, name="mod.py"):
        mod = tmp_path / name
        mod.write_text("import time\nt = time.time()\n")
        return mod

    def test_baseline_suppresses_matching_finding(self, tmp_path):
        mod = self._write_bad_module(tmp_path)
        base = Baseline(entries=[BaselineEntry(
            path=normalize_path(str(mod)), rule="wall-clock",
            context="t = time.time()", note="test fixture",
        )])
        run = run_lint([str(mod)], baseline=base)
        assert run.findings == []
        assert len(run.suppressed) == 1
        assert run.stale == []
        assert run.ok

    def test_entry_survives_line_drift(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("import time\n\n\n# moved down\nt = time.time()\n")
        base = Baseline(entries=[BaselineEntry(
            path=normalize_path(str(mod)), rule="wall-clock",
            context="t = time.time()", note="n",
        )])
        run = run_lint([str(mod)], baseline=base)
        assert run.findings == [] and run.ok

    def test_stale_entry_fails_the_run(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1\n")  # the grandfathered code is gone
        base = Baseline(entries=[BaselineEntry(
            path=normalize_path(str(mod)), rule="wall-clock",
            context="t = time.time()", note="n",
        )])
        run = run_lint([str(mod)], baseline=base)
        assert run.findings == []
        assert len(run.stale) == 1
        assert not run.ok

    def test_unscanned_entries_are_out_of_scope_not_stale(self, tmp_path):
        # Linting one clean file must not expire baseline entries that
        # describe files outside the linted path set.
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1\n")
        base = Baseline(entries=[BaselineEntry(
            path="src/elsewhere.py", rule="wall-clock",
            context="t = time.time()", note="n",
        )])
        run = run_lint([str(mod)], baseline=base)
        assert run.stale == []
        assert run.ok

    def test_partial_update_keeps_unscanned_entries(self, tmp_path):
        mod = self._write_bad_module(tmp_path)
        elsewhere = BaselineEntry(
            path="src/elsewhere.py", rule="wall-clock",
            context="t = time.time()", note="n")
        base = Baseline(entries=[elsewhere])
        run = run_lint([str(mod)], baseline=base)
        updated = base.updated(run._paired, scanned=run._scanned)
        keys = {e.key for e in updated.entries}
        assert elsewhere.key in keys                  # carried over
        assert any(e.context == "t = time.time()"
                   and e.path == normalize_path(str(mod))
                   for e in updated.entries)          # added

    def test_update_baseline_adds_and_expires(self, tmp_path):
        mod = self._write_bad_module(tmp_path)
        stale_entry = BaselineEntry(
            path="src/gone.py", rule="wall-clock", context="old()", note="x")
        base = Baseline(entries=[stale_entry])
        run = run_lint([str(mod)], baseline=base)
        updated = base.updated(run._paired)
        keys = {e.key for e in updated.entries}
        assert stale_entry.key not in keys            # expired
        assert any(e.rule == "wall-clock" and e.context == "t = time.time()"
                   for e in updated.entries)          # added

    def test_update_preserves_existing_notes(self, tmp_path):
        mod = self._write_bad_module(tmp_path)
        base = Baseline(entries=[BaselineEntry(
            path=normalize_path(str(mod)), rule="wall-clock",
            context="t = time.time()", note="keep me",
        )])
        run = run_lint([str(mod)], baseline=base)
        updated = base.updated(run._paired)
        assert [e.note for e in updated.entries] == ["keep me"]

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "base.json"
        base = Baseline(entries=[BaselineEntry("src/a.py", "r", "ctx", "why")])
        base.save(path)
        again = Baseline.load(path)
        assert [e.key for e in again.entries] == [e.key for e in base.entries]
        assert again.entries[0].note == "why"

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path), "--baseline", "none"]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        assert lint_main([str(tmp_path), "--baseline", "none"]) == 1
        assert "wall-clock" in capsys.readouterr().out

    def test_select_runs_only_chosen_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import time, random\nt = time.time()\nx = random.random()\n")
        assert lint_main([str(tmp_path), "--baseline", "none",
                          "--select", "unseeded-random"]) == 1
        out = capsys.readouterr().out
        assert "unseeded-random" in out and "wall-clock" not in out

    def test_select_unknown_rule_is_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path), "--select", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in rule_ids():
            assert rid in out

    def test_update_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        mod = tmp_path / "bad.py"
        mod.write_text("import time\nt = time.time()\n")
        base_path = tmp_path / "base.json"
        assert lint_main([str(mod), "--baseline", str(base_path),
                          "--update-baseline"]) == 0
        capsys.readouterr()
        assert lint_main([str(mod), "--baseline", str(base_path)]) == 0
        assert "1 baseline-suppressed" in capsys.readouterr().out

    def test_stale_baseline_fails_cli(self, tmp_path, capsys):
        mod = tmp_path / "ok.py"
        mod.write_text("x = 1\n")
        base_path = tmp_path / "base.json"
        Baseline(entries=[BaselineEntry(
            path=normalize_path(str(mod)), rule="wall-clock",
            context="t = time.time()", note="n")]).save(base_path)
        assert lint_main([str(mod), "--baseline", str(base_path)]) == 1
        assert "stale baseline entry" in capsys.readouterr().out


class TestSarif:
    def test_document_shape_and_rule_catalog(self, tmp_path):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        run = run_lint([str(tmp_path)])
        doc = to_sarif(run.findings)
        assert doc["version"] == "2.1.0"
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        catalog = {r["id"] for r in driver["rules"]}
        assert catalog == set(rule_ids())
        results = doc["runs"][0]["results"]
        assert len(results) == 1
        res = results[0]
        assert res["ruleId"] == "wall-clock"
        assert res["level"] == "error"
        region = res["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        # ruleIndex must point back into the embedded catalog
        assert driver["rules"][res["ruleIndex"]]["id"] == "wall-clock"

    def test_cli_sarif_output_is_valid_json(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        out_path = tmp_path / "report.sarif"
        assert lint_main([str(tmp_path), "--baseline", "none",
                          "--format", "sarif",
                          "--output", str(out_path)]) == 1
        doc = json.loads(out_path.read_text())
        assert doc["runs"][0]["results"][0]["ruleId"] == "wall-clock"
        # terminal still gets the human summary
        assert "1 error(s)" in capsys.readouterr().out
