"""Abl-5: per-MN independent hash functions vs one global hash.

The paper rejects a single global MAGA hash: an adversary who compromises
one MN and reconstructs its function could classify m-addresses *anywhere*
in the network into flow classes and link the segments of an m-flow.  This
bench plays that adversary against both configurations.
"""

from repro.bench import FigureResult, Testbed, run_process
from repro.attacks import linkage_success_rate


def linkage_rate(shared: bool, channels: int = 10, seed: int = 0) -> float:
    bed = Testbed.create(
        seed=seed, pre_wire=False, mic_kwargs={"shared_flow_hash": shared}
    )
    mic = bed.mic

    def establish_all():
        for i in range(channels):
            src, dst = f"h{(i % 8) + 1}", f"h{16 - (i % 8)}"
            yield from mic.establish(src, dst, service_port=80, n_mns=3)

    run_process(bed.net, establish_all())

    # The adversary compromised one MN and recovered its hash function.
    compromised = next(iter(mic.mn_spaces))
    adversary_F = mic.mn_spaces[compromised]

    trials = []
    for channel in mic.channels.values():
        for plan in channel.flows:
            labeled = [a for a in plan.fwd_addrs if a.mpls is not None]
            if len(labeled) < 2:
                continue
            ids = {
                adversary_F.flow_id_of(a.src_ip, a.dst_ip, a.mpls)
                for a in labeled
            }
            # Linked iff every segment classifies to one consistent class.
            trials.append(len(ids) == 1)
    return linkage_success_rate(trials)


def run_ablation():
    result = FigureResult(
        "Abl-5", "cross-MN m-flow linkage after one-MN hash recovery",
        x_label="configuration", y_label="linkage success rate", unit="",
    )
    result.add("linkage", "global hash", linkage_rate(shared=True))
    result.add("linkage", "per-MN hash", linkage_rate(shared=False))
    return result


def test_abl_hash(benchmark, save_table):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_table("abl_hash", result)

    # With a single global hash the adversary links every m-flow.
    assert result.value("linkage", "global hash") == 1.0
    # With per-MN functions the recovered function is useless elsewhere.
    assert result.value("linkage", "per-MN hash") < 0.2
