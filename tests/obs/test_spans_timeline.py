"""Unit tests: histograms (exact percentiles), span logs, the timeline."""

import pytest

from repro.net import FlowEntry, Match, Network, Output, linear
from repro.obs import NULL_SPAN, Histogram, Observer, SpanLog, begin, labels_key


class TestHistogram:
    def test_nearest_rank_percentiles(self):
        h = Histogram()
        for v in range(100, 0, -1):  # unsorted on purpose
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0
        assert h.percentile(0) == 1.0  # nearest rank is 1-based
        assert h.count == 100
        assert h.mean == pytest.approx(50.5)

    def test_single_value(self):
        h = Histogram()
        h.observe(3.0)
        s = h.summary()
        assert s["p50"] == s["p95"] == s["p99"] == s["min"] == s["max"] == 3.0
        assert s["count"] == 1.0 and s["sum"] == 3.0

    def test_empty_is_all_zero(self):
        s = Histogram().summary()
        assert all(v == 0.0 for k, v in s.items() if k != "buckets")
        assert all(cum == 0 for _, cum in s["buckets"])

    def test_percentile_range_checked(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_observe_after_summary_stays_correct(self):
        h = Histogram()
        h.observe(5.0)
        assert h.percentile(50) == 5.0  # forces the sorted state
        h.observe(1.0)  # arrives out of order afterwards
        assert h.percentile(50) == 1.0
        assert h.max == 5.0


class TestSpanLog:
    def test_record_and_queries(self):
        log = SpanLog()
        log.record("op", 1.0, 3.0, kind="a")
        log.record("op", 4.0, 5.0, kind="b")
        log.record("other", 0.0, 1.0)
        assert len(log) == 3
        assert log.durations("op") == [2.0, 1.0]
        assert log.total("op") == 3.0
        assert log.last("op").label("kind") == "b"
        assert log.last("op", kind="a").duration_s == 2.0
        with pytest.raises(KeyError):
            log.last("op", kind="z")

    def test_explicit_duration_for_disjoint_windows(self):
        log = SpanLog()
        rec = log.record("setup", 0.0, 10.0, duration_s=2.5, protocol="mic-ssl")
        assert rec.end_s - rec.start_s == 10.0
        assert rec.duration_s == 2.5

    def test_begin_without_observer_is_null(self):
        span = begin(None, "anything", label=1)
        assert span is NULL_SPAN
        span.finish(extra=2)  # must be a silent no-op

    def test_begin_with_observer_records_on_finish(self):
        net = Network(linear(1, hosts_per_switch=1))
        obs = Observer.attach(net)
        span = begin(obs, "op", who="me")
        span.finish(result="ok")
        rec = obs.spans.last("op")
        assert rec.start_s == rec.end_s == 0.0
        assert rec.labels == labels_key({"who": "me", "result": "ok"})


class TestTimeline:
    def _busy_net(self):
        net = Network(linear(1, hosts_per_switch=2), seed=3)
        h1, h2 = net.host("h1"), net.host("h2")
        net.switch("s1").table.install(
            FlowEntry(Match(ip_dst=h2.ip), [Output(net.port("s1", "h2"))])
        )
        h2.bind("tcp", 80, lambda host, p: None)
        return net, h1, h2

    def test_period_must_be_positive(self):
        net, h1, h2 = self._busy_net()
        obs = Observer.attach(net)
        with pytest.raises(ValueError):
            obs.start_timeline(0.0)

    def test_samples_land_on_the_period_grid(self):
        net, h1, h2 = self._busy_net()
        obs = Observer.attach(net)
        obs.start_timeline(0.01)
        for _ in range(3):
            h1.send_packet(h1.make_packet(h2.ip, dport=80, payload_size=500))
        net.run(until=0.05)
        obs.stop_timeline()
        ch = net.host("h1").ports[0]  # h1 -> s1 transmit channel
        series = obs.timeline.samples("link.queue_sample.bytes", ch.name)
        assert [t for t, _ in series] == pytest.approx([0.01, 0.02, 0.03, 0.04, 0.05])
        util = obs.timeline.samples("link.utilization", ch.name)
        assert len(util) == len(series)
        # Three 500B-payload packets moved during the first period.
        assert util[0][1] > 0.0
        assert all(u >= 0.0 for _, u in util)

    def test_histograms_accumulate_alongside_series(self):
        net, h1, h2 = self._busy_net()
        obs = Observer.attach(net)
        obs.start_timeline(0.01)
        net.run(until=0.03)
        obs.stop_timeline()
        ch = net.host("h1").ports[0]
        snap = obs.snapshot()
        assert snap.histogram("link.queue_sample.bytes", channel=ch.name)["count"] == 3
        assert snap.histogram("link.utilization", channel=ch.name)["count"] == 3

    def test_stopped_timeline_lets_the_heap_drain(self):
        net, h1, h2 = self._busy_net()
        obs = Observer.attach(net)
        obs.start_timeline(0.01)
        net.run(until=0.02)
        obs.stop_timeline()
        net.run()  # must return: the pending wakeup fires as a no-op
        assert net.sim.now >= 0.02

    def test_start_is_idempotent(self):
        net, h1, h2 = self._busy_net()
        obs = Observer.attach(net)
        t1 = obs.start_timeline(0.01)
        t2 = obs.start_timeline(0.01)
        assert t1 is t2
        net.run(until=0.02)
        obs.stop_timeline()
        ch = net.host("h1").ports[0]
        # One sampler, not two: exactly one sample per period.
        assert len(obs.timeline.samples("link.queue_sample.bytes", ch.name)) == 2
