"""Regression: decoy group entries are removed at channel teardown."""

from repro.core import deploy_mic


def total_groups(net) -> int:
    return sum(len(sw.table.groups) for sw in net.switches())


def test_decoy_groups_removed_on_teardown():
    dep = deploy_mic(seed=71)

    def go():
        return (
            yield from dep.mic.establish("h1", "h16", service_port=80,
                                         n_mns=3, decoys=2)
        )

    proc = dep.sim.process(go())
    dep.run(until=proc)
    assert total_groups(dep.net) >= 1  # the partial-multicast group exists
    dep.mic.teardown(proc.value.channel_id)
    dep.run_for(1.0)
    assert total_groups(dep.net) == 0


def test_repair_does_not_leak_groups():
    dep = deploy_mic(seed=72)

    def go():
        return (
            yield from dep.mic.establish("h1", "h16", service_port=80,
                                         n_mns=3, decoys=1)
        )

    proc = dep.sim.process(go())
    dep.run(until=proc)
    plan = dep.mic.channels[proc.value.channel_id].flows[0]
    groups_before = total_groups(dep.net)
    dep.net.set_link_state(plan.walk[2], plan.walk[3], False)
    dep.run_for(0.5)
    # Repair re-created at most the same number of groups; the old ones are
    # gone with the old cookie's rules.
    assert total_groups(dep.net) <= groups_before
    dep.mic.teardown(proc.value.channel_id)
    dep.run_for(1.0)
    assert total_groups(dep.net) == 0


def test_unrelated_cookie_untouched():
    dep = deploy_mic(seed=73)

    def go():
        a = yield from dep.mic.establish("h1", "h16", service_port=80,
                                         decoys=1, n_mns=3)
        b = yield from dep.mic.establish("h2", "h15", service_port=80,
                                         decoys=1, n_mns=3)
        return a, b

    proc = dep.sim.process(go())
    dep.run(until=proc)
    a, b = proc.value
    before = total_groups(dep.net)
    dep.mic.teardown(a.channel_id)
    dep.run_for(1.0)
    after = total_groups(dep.net)
    assert 0 < after < before
