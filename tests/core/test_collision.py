"""Unit and property tests for collision avoidance machinery."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.collision import (
    CollisionRegistry,
    FlowIdAllocator,
    MAddress,
    MnAddressSpace,
)
from repro.core.collision import CollisionError
from repro.core.labels import LabelSpace
from repro.net import ip


class TestFlowIdAllocator:
    def test_ids_unique_while_live(self):
        alloc = FlowIdAllocator(100)
        ids = [alloc.allocate() for _ in range(100)]
        assert len(set(ids)) == 100

    def test_exhaustion(self):
        alloc = FlowIdAllocator(2)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(RuntimeError):
            alloc.allocate()

    def test_release_recycles(self):
        alloc = FlowIdAllocator(1)
        fid = alloc.allocate()
        alloc.release(fid)
        assert alloc.allocate() == fid

    def test_release_unknown_rejected(self):
        with pytest.raises(ValueError):
            FlowIdAllocator(4).release(0)

    def test_live_count(self):
        alloc = FlowIdAllocator(10)
        a = alloc.allocate()
        alloc.allocate()
        assert alloc.live_count == 2
        alloc.release(a)
        assert alloc.live_count == 1
        assert not alloc.is_live(a)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            FlowIdAllocator(0)


class TestMnAddressSpace:
    def setup_method(self):
        self.rng = random.Random(0)
        self.labels = LabelSpace(self.rng)
        self.labels.register_mn("s1")
        self.labels.register_mn("s2")
        self.s1 = MnAddressSpace("s1", self.rng, self.labels)
        self.s2 = MnAddressSpace("s2", self.rng, self.labels)

    def test_label_classifies_to_flow_id(self):
        label = self.s1.draw_label(7, ip("10.0.0.1"), ip("10.0.0.2"), self.rng)
        assert self.s1.flow_id_of(ip("10.0.0.1"), ip("10.0.0.2"), label) == 7

    def test_label_owned_by_mn(self):
        label = self.s1.draw_label(7, ip("10.0.0.1"), ip("10.0.0.2"), self.rng)
        assert self.labels.owner_of(label) == "s1"

    def test_same_mn_different_flows_never_collide(self):
        """Two different live flow IDs cannot produce the same ⟨src, dst,
        label⟩ tuple on the same MN — F is a function."""
        seen = {}
        for fid in range(20):
            for _ in range(20):
                src = ip(random.Random(fid).getrandbits(32))
                dst = ip(self.rng.getrandbits(32))
                label = self.s1.draw_label(fid, src, dst, self.rng)
                key = (src, dst, label)
                assert seen.get(key, fid) == fid
                seen[key] = fid

    def test_different_mns_labels_disjoint(self):
        labels_1 = {
            self.s1.draw_label(1, ip(1), ip(2), self.rng) for _ in range(100)
        }
        labels_2 = {
            self.s2.draw_label(1, ip(1), ip(2), self.rng) for _ in range(100)
        }
        assert labels_1.isdisjoint(labels_2)

    def test_independent_hash_functions(self):
        assert self.s1.F != self.s2.F

    @settings(max_examples=60, deadline=None)
    @given(
        fid1=st.integers(0, 1023),
        fid2=st.integers(0, 1023),
        seed=st.integers(0, 50),
    )
    def test_cross_flow_disjointness_property(self, fid1, fid2, seed):
        if fid1 == fid2:
            return
        rng = random.Random(seed)
        labels = LabelSpace(rng)
        labels.register_mn("sw")
        space = MnAddressSpace("sw", rng, labels)
        src1, dst1 = ip(rng.getrandbits(32)), ip(rng.getrandbits(32))
        src2, dst2 = ip(rng.getrandbits(32)), ip(rng.getrandbits(32))
        t1 = (src1, dst1, space.draw_label(fid1, src1, dst1, rng))
        t2 = (src2, dst2, space.draw_label(fid2, src2, dst2, rng))
        assert t1 != t2


class TestCollisionRegistry:
    def test_register_and_owner(self):
        reg = CollisionRegistry()
        reg.register("s1", ("a", "b", 1, 2, 3), "ch1")
        assert reg.owner("s1", ("a", "b", 1, 2, 3)) == "ch1"
        assert reg.owner("s1", ("x",)) is None

    def test_duplicate_same_owner_allowed(self):
        reg = CollisionRegistry()
        reg.register("s1", ("k",), "ch1")
        reg.register("s1", ("k",), "ch1")  # revisits of a walk

    def test_duplicate_other_owner_rejected(self):
        reg = CollisionRegistry()
        reg.register("s1", ("k",), "ch1")
        with pytest.raises(CollisionError):
            reg.register("s1", ("k",), "ch2")

    def test_same_key_different_switch_ok(self):
        reg = CollisionRegistry()
        reg.register("s1", ("k",), "ch1")
        reg.register("s2", ("k",), "ch2")

    def test_release_owner(self):
        reg = CollisionRegistry()
        reg.register("s1", ("k1",), "ch1")
        reg.register("s2", ("k2",), "ch1")
        reg.register("s1", ("k3",), "ch2")
        assert reg.release_owner("ch1") == 2
        assert reg.total_keys() == 1
        reg.register("s1", ("k1",), "ch9")  # freed key is reusable

    def test_keys_on(self):
        reg = CollisionRegistry()
        reg.register("s1", ("k1",), "a")
        reg.register("s1", ("k2",), "b")
        assert sorted(reg.keys_on("s1")) == [("k1",), ("k2",)]
        assert reg.keys_on("ghost") == []


class TestMAddress:
    def test_match_triple(self):
        a = MAddress(ip(1), ip(2), 10, 20, 99)
        assert a.match_triple() == (ip(1), ip(2), 99)

    def test_frozen(self):
        a = MAddress(ip(1), ip(2), 10, 20, None)
        with pytest.raises(Exception):
            a.sport = 11
