"""Latency-breakdown consistency tests: prediction vs measurement."""

import pytest

from repro.bench import Testbed, open_mic, open_tcp, run_process
from repro.bench.breakdown import (
    LatencyBreakdown,
    predict_mic_echo,
    predict_tcp_echo,
)
from repro.workloads.iperf import measure_echo


class TestContainer:
    def test_add_and_total(self):
        b = LatencyBreakdown()
        b.add("a", 1e-6)
        b.add("a", 1e-6)
        b.add("b", 2e-6)
        assert b.total == pytest.approx(4e-6)
        assert b.share("a") == pytest.approx(0.5)

    def test_format_table(self):
        b = LatencyBreakdown()
        b.add("links", 3e-6)
        b.add("stacks", 1e-6)
        text = b.format_table()
        assert "TOTAL" in text and "links" in text and "75.0%" in text


class TestAgainstMeasurement:
    def test_tcp_prediction_matches_measurement(self):
        bed = Testbed.create(seed=40)
        session = run_process(bed.net, open_tcp(bed, "h1", "h16", 50000))
        echo = run_process(
            bed.net, measure_echo(bed.net.sim, session.client, session.server, 10)
        )
        # Cross-pod pair: 5 switches on the shortest path.
        predicted = predict_tcp_echo(bed.net.params, switch_hops=5)
        assert echo.rtt_s == pytest.approx(predicted.total, rel=0.02)

    def test_mic_prediction_matches_measurement(self):
        bed = Testbed.create(seed=41)
        session = run_process(bed.net, open_mic(bed, "h1", "h16", 50001, n_mns=3))
        echo = run_process(
            bed.net, measure_echo(bed.net.sim, session.client, session.server, 10)
        )
        plan = next(iter(bed.mic.channels.values())).flows[0]
        walk_switches = sum(
            1 for n in plan.walk if bed.net.topo.kind(n) == "switch"
        )
        predicted = predict_mic_echo(
            bed.net.params, walk_switches=walk_switches, n_mns=3
        )
        # Rewrite-action counts vary slightly per segment draw: 5% margin.
        assert echo.rtt_s == pytest.approx(predicted.total, rel=0.05)

    def test_mn_rewrites_are_negligible_share(self):
        """The paper's 'substantially negligible' claim, decomposed: the
        MN rewrite stage is a low single-digit share of the round trip
        (~3% with our OVS-class 100 ns/action calibration)."""
        bed = Testbed.create(seed=42)
        predicted = predict_mic_echo(bed.net.params, walk_switches=5, n_mns=3)
        assert predicted.share("MN rewrites") < 0.05

    def test_links_and_stacks_dominate(self):
        bed = Testbed.create(seed=43)
        predicted = predict_tcp_echo(bed.net.params, switch_hops=5)
        dominant = (
            predicted.share("host stacks")
            + predicted.share("link propagation")
            + predicted.share("link serialization")
        )
        assert dominant > 0.8
