"""Taint-pass tests: scripted leak and sanctioned-flow fixtures.

The fixtures model exactly the flows MIC cares about: a plaintext
endpoint identity (``packet.ip_src`` and friends, MAGA pre-images)
escaping into a log/export/exception sink is the anonymity violation;
the same value routed through a sanctioned boundary (``content_tag``,
the MAGA encode, ``crc32``) is the sanctioned design.
"""

import textwrap

from repro.analysis.lint import lint_paths, lint_source
from repro.analysis.rules import get_rule
from repro.analysis.taint import collect_project

RULES = [get_rule("endpoint-leak")]


def leaks_of(source, path="src/repro/fixture.py", project=None):
    return [
        f for f in lint_source(textwrap.dedent(source), path=path,
                               rules=RULES, project=project)
        if f.rule == "endpoint-leak"
    ]


class TestKnownLeaks:
    def test_fstring_of_src_into_log(self):
        findings = leaks_of("""
            def handle(self, packet, log):
                log.info(f"got packet from {packet.ip_src}")
        """)
        assert len(findings) == 1
        assert "ip_src" in findings[0].message

    def test_direct_print_of_dst(self):
        assert leaks_of("""
            def debug(packet):
                print("to", packet.ip_dst)
        """)

    def test_tainted_variable_chain(self):
        assert leaks_of("""
            def handle(packet):
                who = packet.ip_src
                banner = "from " + str(who)
                print(banner)
        """)

    def test_exception_message_leak(self):
        assert leaks_of("""
            def route(packet):
                raise ValueError(f"no route for {packet.ip_dst}")
        """)

    def test_preimage_into_json(self):
        assert leaks_of("""
            import json
            def dump(preimage):
                return json.dumps({"p": preimage})
        """)

    def test_loop_carried_taint_found_on_second_pass(self):
        assert leaks_of("""
            def pump(packets, log):
                last = None
                for p in packets:
                    if last is not None:
                        log.warning("prev was %s", last)
                    last = p.ip_src
        """)


class TestSanctionedFlows:
    def test_content_tag_boundary_launders(self):
        assert leaks_of("""
            def handle(packet, log):
                log.info("tag=%s", content_tag(packet.ip_src, packet.ip_dst))
        """) == []

    def test_crc32_hash_is_sanctioned(self):
        assert leaks_of("""
            from zlib import crc32
            def handle(packet):
                print(crc32(str(packet.ip_src).encode()))
        """) == []

    def test_maga_encode_is_sanctioned(self):
        assert leaks_of("""
            def handle(packet, maga):
                print("m-addr", maga.solve(packet.ip_src, packet.ip_dst))
        """) == []

    def test_len_of_identity_is_harmless(self):
        assert leaks_of("""
            def handle(packet):
                print(len(str(packet.ip_src)))
        """) == []

    def test_untainted_values_never_flag(self):
        assert leaks_of("""
            def handle(packet, log):
                log.info("ttl=%d size=%d", packet.ttl, packet.size)
        """) == []


class TestProjectAnnotations:
    def test_annotated_sink_collected_and_enforced(self):
        sink_mod = textwrap.dedent("""
            def ship(payload):  # taint: sink
                pass
        """)
        user_mod = textwrap.dedent("""
            from repro.out import ship
            def handle(packet):
                ship(packet.ip_dst)
        """)
        project = collect_project([
            ("src/repro/out.py", sink_mod),
            ("src/repro/user.py", user_mod),
        ])
        assert "ship" in project.sinks
        findings = leaks_of(user_mod, path="src/repro/user.py",
                            project=project)
        assert len(findings) == 1
        assert "ship" in findings[0].message

    def test_annotated_boundary_launders(self):
        boundary_mod = textwrap.dedent("""
            def scrub(value):  # taint: boundary
                return "<redacted>"
        """)
        user_mod = textwrap.dedent("""
            from repro.safe import scrub
            def handle(packet):
                print(scrub(packet.ip_src))
        """)
        project = collect_project([
            ("src/repro/safe.py", boundary_mod),
            ("src/repro/user.py", user_mod),
        ])
        assert leaks_of(user_mod, path="src/repro/user.py",
                        project=project) == []

    def test_annotation_on_line_above_def(self):
        mod = textwrap.dedent("""
            # taint: sink
            def export(doc):
                pass
        """)
        project = collect_project([("src/repro/x.py", mod)])
        assert "export" in project.sinks

    def test_lint_paths_collects_annotations_across_files(self, tmp_path):
        (tmp_path / "out.py").write_text(
            "def ship(payload):  # taint: sink\n    pass\n")
        (tmp_path / "user.py").write_text(
            "from out import ship\n"
            "def f(packet):\n"
            "    ship(packet.ip_src)\n")
        findings = [f for f in lint_paths([str(tmp_path)], rules=RULES)]
        assert [f.rule for f in findings] == ["endpoint-leak"]

    def test_pragma_silences_known_leak(self):
        assert leaks_of("""
            def handle(packet, log):
                log.info(f"from {packet.ip_src}")  # lint: allow(endpoint-leak)
        """) == []
