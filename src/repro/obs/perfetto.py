"""Perfetto / Chrome trace-event exporter for packet journeys.

Renders a journey dump as trace-event JSON (the ``{"traceEvents": [...]}``
document Chrome's ``about:tracing`` and https://ui.perfetto.dev load
natively): one *process* track per network location (host, switch, or
directed channel), one *thread* lane per wire content (``content_tag``),
with

* ``X`` (complete) slices for switch hops — ingress to egress, rewrite
  old→new annotated in ``args`` — and for link transits (queue wait +
  serialization + propagation),
* ``i`` (instant) marks for anomalies and endpoints (miss, drop, TTL
  death, divergence, foreign drop, host tx/rx),
* ``s``/``t``/``f`` flow arrows stitching one content tag's hops across
  tracks, so a packet's whole journey is clickable end-to-end even though
  every header on the wire changed,
* ``C`` (counter) tracks from a ``profile`` section, when the dump carries
  one: heap depth and per-subsystem cumulative wall-ms sampled every Nth
  dispatch by :class:`repro.obs.prof.Profiler`, plotted against sim time
  alongside the journeys.

Timestamps are microseconds of sim time, as the format requires.
"""

from __future__ import annotations

import json
from typing import Any, Union

from .journey import JourneyRecorder, journeys_to_json

__all__ = ["to_perfetto", "write_perfetto"]

_US = 1e6

#: event kinds rendered as instant marks, with display names
_INSTANT_NAMES = {
    "host.tx": "tx",
    "host.rx": "rx",
    "host.foreign_drop": "foreign_drop",
    "switch.miss": "miss",
    "switch.ttl_expired": "ttl_expired",
    "switch.divergence": "DIVERGENCE",
    "link.drop": "drop",
}


def _doc_of(source: Union[JourneyRecorder, dict[str, Any]]) -> dict[str, Any]:
    if isinstance(source, JourneyRecorder):
        return journeys_to_json(source)
    return source


class _Tracks:
    """Deterministic pid/tid assignment with metadata events."""

    def __init__(self, events: list[dict[str, Any]]):
        self.events = events
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[int, int], int] = {}

    def pid(self, where: str) -> int:
        pid = self._pids.get(where)
        if pid is None:
            pid = self._pids[where] = len(self._pids) + 1
            self.events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": where},
            })
        return pid

    def tid(self, pid: int, content_tag: int) -> int:
        tid = self._tids.get((pid, content_tag))
        if tid is None:
            tid = self._tids[(pid, content_tag)] = (
                sum(1 for p, _ in self._tids if p == pid) + 1
            )
            self.events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": f"tag {content_tag}"},
            })
        return tid


def to_perfetto(source: Union[JourneyRecorder, dict[str, Any]]) -> dict[str, Any]:  # taint: sink
    """Build the trace-event document from a recorder or a journey dump."""
    doc = _doc_of(source)
    events: list[dict[str, Any]] = []
    tracks = _Tracks(events)

    for journey in doc.get("journeys", []):
        tag = journey["content_tag"]
        flow_open = False
        # open switch hops: (where, uid) -> (ts_us, ingress detail, rewrite)
        open_hops: dict[tuple[str, int], dict[str, Any]] = {}
        for ev in journey["events"]:
            kind, where = ev["kind"], ev["where"]
            ts = ev["time_s"] * _US
            detail = ev["detail"]
            pid = tracks.pid(where)
            tid = tracks.tid(pid, tag)
            base = {"pid": pid, "tid": tid, "cat": "journey"}

            if kind == "switch.ingress":
                open_hops[(where, ev["uid"])] = {
                    "ts": ts, "in_port": detail["in_port"],
                    "header": detail["header"], "rewrite": None, "closed": False,
                }
                # flow step arrow into this switch's lane
                events.append({
                    **base, "ph": "t" if flow_open else "s", "id": tag,
                    "name": f"tag {tag}", "ts": ts,
                })
                flow_open = True
            elif kind == "switch.rewrite":
                hop = open_hops.get((where, ev["uid"]))
                if hop is not None:
                    hop["rewrite"] = {
                        "old": detail["old"], "new": detail["new"],
                        "entry_id": detail["entry_id"], "cookie": detail["cookie"],
                    }
            elif kind == "switch.egress":
                hop = open_hops.get((where, detail["parent_uid"]))
                if hop is not None and not hop["closed"]:
                    hop["closed"] = True
                    args: dict[str, Any] = {
                        "in_port": hop["in_port"],
                        "ingress_header": hop["header"],
                        "egress_header": detail["header"],
                        "out_port": detail["out_port"],
                    }
                    name = "forward"
                    if hop["rewrite"] is not None:
                        rw = hop["rewrite"]
                        args["rewrite"] = f"{tuple(rw['old'])} -> {tuple(rw['new'])}"
                        args["entry_id"] = rw["entry_id"]
                        args["cookie"] = rw["cookie"]
                        name = "rewrite+forward"
                    events.append({
                        **base, "ph": "X", "name": name, "ts": hop["ts"],
                        "dur": max(0.0, ts - hop["ts"]), "args": args,
                    })
            elif kind == "link.tx":
                dur = (
                    detail["queue_wait_s"] + detail["serialize_s"]
                    + detail["delay_s"]
                ) * _US
                events.append({
                    **base, "ph": "X", "name": "transit", "ts": ts, "dur": dur,
                    "args": {
                        "queue_wait_us": detail["queue_wait_s"] * _US,
                        "serialize_us": detail["serialize_s"] * _US,
                        "propagation_us": detail["delay_s"] * _US,
                        "backlog_bytes": detail["backlog_bytes"],
                        "size": detail["size"],
                    },
                })
            if kind in _INSTANT_NAMES:
                events.append({
                    **base, "ph": "i", "s": "t",
                    "name": _INSTANT_NAMES[kind], "ts": ts,
                    "args": {"uid": ev["uid"], **detail},
                })
            if kind == "host.rx" and flow_open:
                events.append({
                    **base, "ph": "f", "bp": "e", "id": tag,
                    "name": f"tag {tag}", "ts": ts,
                })

    profile = doc.get("profile")
    if profile:
        _profile_counters(profile, events, tracks)

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _profile_counters(
    profile: dict[str, Any], events: list[dict[str, Any]], tracks: _Tracks
) -> None:
    """Emit ``C`` counter events from a profile section's dispatch samples."""
    samples = profile.get("samples", [])
    if not samples:
        return
    pid = tracks.pid("self-profile")
    for sample in samples:
        ts = sample["sim_time_s"] * _US
        events.append({
            "ph": "C", "pid": pid, "tid": 0, "name": "heap_depth",
            "ts": ts, "args": {"depth": sample["heap_depth"]},
        })
        events.append({
            "ph": "C", "pid": pid, "tid": 0, "name": "dispatches",
            "ts": ts, "args": {"count": sample["dispatches"]},
        })
        for name, cum_ns in sorted(sample.get("cum_ns", {}).items()):
            events.append({
                "ph": "C", "pid": pid, "tid": 0, "name": f"cum_ms.{name}",
                "ts": ts, "args": {"ms": cum_ns / 1e6},
            })


def write_perfetto(  # taint: sink
    source: Union[JourneyRecorder, dict[str, Any]], path: str
) -> None:
    """Write the trace-event JSON to ``path``."""
    with open(path, "w") as fh:
        json.dump(to_perfetto(source), fh, indent=1)
