"""Acked installs: lost flow-mods are re-driven with timeout and backoff."""

import pytest

from repro.faults import FaultSchedule
from repro.net import FlowEntry, Match, Network, Output, fat_tree
from repro.sdn import Controller
from repro.sdn.controller import InstallLostError


def _entry(net):
    return FlowEntry(Match(ip_dst=net.host("h1").ip), [Output(1)])


def _loss_schedule(net, ctrl, loss_prob=1.0, duration=0.05, seed=0, **kwargs):
    sched = FaultSchedule(seed=seed)
    sched.rule_install_loss(at_s=0.0, duration_s=duration, loss_prob=loss_prob,
                            **kwargs)
    sched.attach(net, ctrl)
    return sched


def test_lost_installs_are_retried_until_the_window_ends():
    net = Network(fat_tree(4), seed=0)
    ctrl = Controller(net, ack_timeout_s=0.004)
    sched = _loss_schedule(net, ctrl, loss_prob=1.0, duration=0.05)
    sw = net.switch("p0e0")
    done = ctrl.install("p0e0", _entry(net))
    net.run(until=1.0)
    assert done.ok
    assert len(list(sw.table.iter_entries())) == 1  # landed exactly once
    assert ctrl.flow_mods_lost > 0
    assert ctrl.flow_mods_retried > 0
    assert sched.flowmods_lost == ctrl.flow_mods_lost


def test_retry_budget_exhaustion_fails_the_install_event():
    net = Network(fat_tree(4), seed=0)
    ctrl = Controller(net, ack_timeout_s=0.004, max_install_retries=2)
    _loss_schedule(net, ctrl, loss_prob=1.0, duration=60.0)
    result = {}

    def go():
        try:
            yield ctrl.install("p0e0", _entry(net))
            result["outcome"] = "ok"
        except InstallLostError:
            result["outcome"] = "lost"

    net.sim.process(go())
    net.run(until=1.0)
    assert result["outcome"] == "lost"
    assert len(list(net.switch("p0e0").table.iter_entries())) == 0


def test_delay_fault_defers_but_does_not_lose():
    net = Network(fat_tree(4), seed=0)
    ctrl = Controller(net)
    _loss_schedule(net, ctrl, loss_prob=0.0, duration=10.0,
                   delay_prob=1.0, extra_delay_s=0.05)
    base = net.params.flow_install_delay_s
    done = ctrl.install("p0e0", _entry(net))
    net.run(until=base + 0.01)
    assert not done.triggered  # still riding out the injected delay
    net.run(until=base + 0.06)
    assert done.ok
    assert ctrl.flow_mods_lost == 0


def test_loss_scope_spares_other_switches():
    net = Network(fat_tree(4), seed=0)
    ctrl = Controller(net, ack_timeout_s=0.004)
    sched = FaultSchedule(seed=0)
    sched.rule_install_loss(at_s=0.0, duration_s=10.0, loss_prob=1.0,
                            switches=("p0e0",))
    sched.attach(net, ctrl)
    clean = ctrl.install("p0e1", _entry(net))
    net.run(until=0.01)
    assert clean.ok
    assert ctrl.flow_mods_lost == 0


def test_install_batch_and_group_ride_the_same_machinery():
    net = Network(fat_tree(4), seed=0)
    ctrl = Controller(net, ack_timeout_s=0.004)
    _loss_schedule(net, ctrl, loss_prob=1.0, duration=0.02, seed=5)
    from repro.net import GroupEntry

    sw = net.switch("p0a0")
    batch = ctrl.install_batch("p0a0", [_entry(net), _entry(net)])
    group = ctrl.install_group(
        "p0a0", GroupEntry(group_id=1, buckets=[[Output(1)], [Output(2)]])
    )
    net.run(until=1.0)
    assert batch.ok and group.ok
    assert len(list(sw.table.iter_entries())) == 2
    assert sw.table.groups


def test_partition_blocks_packet_ins():
    net = Network(fat_tree(4), seed=0)
    ctrl = Controller(net)
    sched = FaultSchedule()
    sched.control_partition("p0e0", at_s=0.0, duration_s=10.0)
    sched.attach(net, ctrl)
    h1 = net.host("h1")
    # no rules anywhere: the first packet punts to the controller, but the
    # partition swallows the packet-in
    h1.send_packet(h1.make_packet(net.host("h2").ip, dport=80, payload_size=64))
    net.run(until=0.1)
    assert ctrl.packet_ins_blocked > 0
    assert any(
        r.category == "ctrl.packet_in_blocked" for r in net.trace.records
    )


def test_same_seed_same_fates():
    def run(seed):
        net = Network(fat_tree(4), seed=0)
        ctrl = Controller(net, ack_timeout_s=0.004)
        sched = _loss_schedule(net, ctrl, loss_prob=0.5, duration=10.0,
                               seed=seed)
        for _ in range(16):
            ctrl.install("p0e0", _entry(net))
        net.run(until=2.0)
        return (ctrl.flow_mods_lost, ctrl.flow_mods_retried,
                sched.flowmods_lost)

    assert run(3) == run(3)
    with pytest.raises(AssertionError):
        assert run(3) == run(4)
