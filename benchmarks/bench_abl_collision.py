"""Abl-1: MAGA vs naive random m-address assignment.

DESIGN.md question: does the hash-partitioned address space actually buy
anything over drawing random plausible addresses?  At equal label budgets,
naive random draws collide (birthday effect) while MAGA's per-flow disjoint
classes give *zero* collisions by construction — and the MC can classify any
observed tuple back to its flow, which random draws cannot.
"""

import random

from repro.bench import FigureResult
from repro.core import LabelSpace, MnAddressSpace


def draw_collisions(label_bits: int, n_flows: int, seed: int = 0):
    """(naive_collisions, maga_collisions) among n_flows draws on one MN."""
    rng = random.Random(seed)
    # A modest plausible-pair pool, as on an interior fat-tree link.
    pairs = [(f"10.0.0.{a}", f"10.0.0.{b}") for a in range(1, 17)
             for b in range(1, 17) if a != b]

    naive_seen = set()
    naive_collisions = 0
    for _ in range(n_flows):
        key = (*rng.choice(pairs), rng.getrandbits(label_bits))
        if key in naive_seen:
            naive_collisions += 1
        naive_seen.add(key)

    # MAGA with an equivalent label budget: flow_part gets label_bits bits.
    labels = LabelSpace(rng, mn_bits=16, flow_bits=label_bits, mn_shift=2)
    labels.register_mn("sw")
    space = MnAddressSpace("sw", rng, labels, flow_shift=max(1, label_bits - 8))
    maga_seen = set()
    maga_collisions = 0
    for fid in range(min(n_flows, space.flow_id_values)):
        from repro.net import ip

        a, b = rng.choice(pairs)
        label = space.draw_label(fid, ip(a), ip(b), rng)
        key = (a, b, label)
        if key in maga_seen:
            maga_collisions += 1
        maga_seen.add(key)
    return naive_collisions, maga_collisions


def run_ablation(label_bits_sweep=(8, 10, 12), n_flows: int = 200, trials: int = 20):
    result = FigureResult(
        "Abl-1", "m-address collisions: naive random vs MAGA",
        x_label="label_bits", y_label="collisions per trial", unit="",
    )
    for bits in label_bits_sweep:
        naive_total = maga_total = 0
        for t in range(trials):
            n, m = draw_collisions(bits, n_flows, seed=t)
            naive_total += n
            maga_total += m
        result.add("naive", bits, naive_total / trials)
        result.add("MAGA", bits, maga_total / trials)
    return result


def test_abl_collision(benchmark, save_table):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_table("abl_collision", result)

    for bits in (8, 10, 12):
        assert result.value("MAGA", bits) == 0.0
    # The naive scheme collides measurably at tight label budgets.
    assert result.value("naive", 8) > 0
    # Collisions shrink as the label space grows (sanity on the comparator).
    assert result.value("naive", 12) <= result.value("naive", 8)
