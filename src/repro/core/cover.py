"""Cover traffic: dummy mimic channels that flatten the traffic matrix.

**Extension beyond the paper.**  MIC's rewriting hides *who* talks to whom,
but the volume arriving at a host's access link is necessarily real — an
adversary tapping edge switches can still find a hub by byte counts (the
paper's motivating "locate the metadata server" attack, measured in
Abl-9/10).  The classic fix, referenced in the paper's related work
(Tarzan), is cover traffic.

:class:`CoverTraffic` drives it through ordinary mimic channels: dummy
channels between random host pairs, each carrying a random payload to a
sink service, indistinguishable on the wire from real channels (because
they *are* real channels).
"""

from __future__ import annotations

from typing import Optional, Sequence

from .client import MicServer
from .deployment import MicDeployment

__all__ = ["CoverTraffic", "COVER_PORT"]

#: the sink service port cover channels terminate at
COVER_PORT = 9898


class CoverTraffic:
    """Dummy-channel generator over a :class:`MicDeployment`."""

    def __init__(
        self,
        dep: MicDeployment,
        hosts: Optional[Sequence[str]] = None,
        port: int = COVER_PORT,
    ):
        self.dep = dep
        self.sim = dep.sim
        self.port = port
        self.hosts = list(hosts) if hosts is not None else dep.net.topo.hosts()
        self.rng = self.sim.rng("cover-traffic")
        self.channels_launched = 0
        self.bytes_sent = 0
        self._sinks: dict[str, MicServer] = {}
        for h in self.hosts:
            self._install_sink(h)

    def _install_sink(self, host_name: str) -> None:
        server = MicServer(self.dep.net.host(host_name), self.port)
        self._sinks[host_name] = server
        self.sim.process(self._sink_loop(server), name=f"cover.sink.{host_name}")

    def _sink_loop(self, server: MicServer):
        while True:
            stream = yield server.accept()
            self.sim.process(self._drain(stream), name="cover.drain")

    def _drain(self, stream):
        while True:
            data = yield stream.recv(65536)
            if not data:
                return

    # ------------------------------------------------------------------
    def start(
        self,
        rate_per_s: float,
        horizon_s: float,
        bytes_low: int = 2_000,
        bytes_high: int = 40_000,
        n_mns: int = 2,
    ) -> None:
        """Launch dummy channels as a Poisson process on [now, now+horizon).

        Each dummy channel picks a uniform random (initiator, responder)
        pair, pushes a uniform random payload through it, and closes.
        """
        if rate_per_s <= 0 or horizon_s <= 0:
            raise ValueError("rate and horizon must be positive")
        self.sim.process(
            self._arrival_loop(rate_per_s, horizon_s, bytes_low, bytes_high,
                               n_mns),
            name="cover.arrivals",
        )

    def _arrival_loop(self, rate, horizon, lo, hi, n_mns):
        end = self.sim.now + horizon
        while True:
            gap = self.rng.expovariate(rate)
            if self.sim.now + gap >= end:
                return
            yield self.sim.timeout(gap)
            src, dst = self.rng.sample(self.hosts, 2)
            nbytes = self.rng.randint(lo, hi)
            self.sim.process(
                self._one_dummy(src, dst, nbytes, n_mns), name="cover.dummy"
            )

    def _one_dummy(self, src: str, dst: str, nbytes: int, n_mns: int):
        endpoint = self.dep.endpoint(src)
        try:
            stream = yield from endpoint.connect(
                dst, service_port=self.port, n_mns=n_mns
            )
        except Exception:
            return  # fabric congestion/exhaustion: drop this dummy quietly
        self.channels_launched += 1
        stream.send(b"\x00" * nbytes)
        self.bytes_sent += nbytes
        yield self.sim.timeout(0.05)
        yield from endpoint.shutdown(stream)
