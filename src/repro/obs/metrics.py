"""Metric value types: histograms and snapshot samples.

Counters and gauges are *derived* at snapshot time from the live simulation
objects (flow entries, link channels, host/switch tallies) — the hot path
pays nothing beyond the counting it already does.  Histograms are the only
accumulating structure: they store raw observations and compute exact
nearest-rank percentiles on demand, which is the right trade for simulated
runs (thousands to low millions of observations, no streaming constraint).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence

__all__ = [
    "Histogram",
    "Sample",
    "MetricsSnapshot",
    "labels_key",
    "DEFAULT_BUCKET_BOUNDS",
]

#: default histogram bucket upper bounds (seconds): a 1-2-5 ladder from 1 µs
#: to 10 s, wide enough for per-hop queue waits and end-to-end RTTs alike.
DEFAULT_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    for base in (1.0, 2.0, 5.0)
) + (10.0,)


def labels_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical hashable form of a label set (sorted, stringified)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Histogram:
    """Exact-percentile histogram over float observations."""

    __slots__ = ("values", "_sorted")

    def __init__(self) -> None:
        self.values: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        """Record one observation."""
        if self._sorted and self.values and value < self.values[-1]:
            self._sorted = False
        self.values.append(value)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self.values.sort()
            self._sorted = True

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.values)

    @property
    def total(self) -> float:
        """Sum of observations."""
        return sum(self.values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self.total / len(self.values) if self.values else 0.0

    @property
    def min(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        """Largest observation (0.0 when empty)."""
        return max(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100] (0.0 when empty)."""
        if not self.values:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of [0, 100]")
        self._ensure_sorted()
        rank = max(1, -(-len(self.values) * p // 100))  # ceil, 1-based
        return self.values[int(rank) - 1]

    def buckets(
        self, bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS
    ) -> list[tuple[float, int]]:
        """Prometheus-style cumulative buckets: ``(le, count ≤ le)`` pairs.

        The implicit ``+Inf`` bucket is :attr:`count`; exporters add it.
        """
        self._ensure_sorted()
        return [
            (le, bisect.bisect_right(self.values, le)) for le in sorted(bounds)
        ]

    def summary(
        self, bucket_bounds: Optional[Sequence[float]] = DEFAULT_BUCKET_BOUNDS
    ) -> dict[str, Any]:
        """The export form: count/sum/min/mean/p50/p95/p99/max (+ buckets).

        ``buckets`` — cumulative ``[le, count]`` pairs — ride along so
        histograms survive the Prometheus round-trip; pass
        ``bucket_bounds=None`` to omit them.  Scalar-only consumers (CSV)
        skip the non-scalar field.
        """
        out: dict[str, Any] = {
            "count": float(self.count),
            "sum": self.total,
            "min": self.min,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }
        if bucket_bounds is not None:
            out["buckets"] = [list(b) for b in self.buckets(bucket_bounds)]
        return out

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class Sample:
    """One exported counter/gauge reading at snapshot time."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float

    def label(self, key: str) -> Optional[str]:
        """One label's value, or None."""
        for k, v in self.labels:
            if k == key:
                return v
        return None

    def matches(self, **criteria: Any) -> bool:
        """True iff every criterion equals the sample's label value."""
        have = dict(self.labels)
        return all(have.get(k) == str(v) for k, v in criteria.items())


@dataclass
class MetricsSnapshot:
    """A point-in-time reading of every derived counter and gauge.

    ``samples`` covers counters/gauges; ``histograms`` maps
    ``(name, labels)`` to summary dicts; ``spans`` carries the completed
    span records.  Produced by :meth:`repro.obs.Observer.snapshot`.

    ``version`` stamps the export schema (2 since the self-profiling
    layer; version-1 documents predate the stamp entirely and consumers
    must treat a missing key as 1).  ``profile`` is the optional
    :meth:`repro.obs.prof.ProfileReport.to_doc` section, present only when
    a profiler was hooked at snapshot time.
    """

    #: current snapshot export schema version
    VERSION = 2

    sim_time_s: float
    samples: list[Sample] = field(default_factory=list)
    histograms: dict[tuple[str, tuple[tuple[str, str], ...]], dict[str, Any]] = field(
        default_factory=dict
    )
    spans: list = field(default_factory=list)  # list[SpanRecord]
    version: int = VERSION
    profile: Optional[dict[str, Any]] = None

    # -- building ---------------------------------------------------------
    def add(self, name: str, value: float, **labels: Any) -> None:
        """Append one counter/gauge sample."""
        self.samples.append(Sample(name, labels_key(labels), float(value)))

    # -- queries ----------------------------------------------------------
    def select(self, name: str, **criteria: Any) -> Iterator[Sample]:
        """Samples with a given name whose labels match all criteria."""
        for s in self.samples:
            if s.name == name and s.matches(**criteria):
                yield s

    def value(self, name: str, **criteria: Any) -> float:
        """The unique matching sample's value (KeyError if 0 or >1 match)."""
        found = list(self.select(name, **criteria))
        if len(found) != 1:
            raise KeyError(
                f"{name} with {criteria}: {len(found)} matches (need exactly 1)"
            )
        return found[0].value

    def total(self, name: str, **criteria: Any) -> float:
        """Sum over all matching samples (0.0 if none)."""
        return sum(s.value for s in self.select(name, **criteria))

    def histogram(self, name: str, **labels: Any) -> dict[str, Any]:
        """A histogram's summary dict (KeyError if absent)."""
        return self.histograms[(name, labels_key(labels))]

    def names(self) -> set[str]:
        """Every distinct name this snapshot exports (samples + histograms + spans)."""
        out = {s.name for s in self.samples}
        out.update(name for name, _ in self.histograms)
        out.update(rec.name for rec in self.spans)
        return out
