"""Timing-based flow correlation.

Content matching (:mod:`.correlation`) fails against hops that re-encrypt
— a Tor relay's output cells share no bytes with its input cells.  The
classic fallback is *timing* correlation: an ingress packet and the egress
packet that follows it within the node's processing-delay window are likely
the same unit of traffic.

:func:`correlate_by_timing` implements that attacker against any
observation point; :func:`interarrival_signature` and
:func:`rate_similarity` support the rate-based analysis of Sec V (matching
two observation points by their traffic-rate profiles).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import TYPE_CHECKING, Sequence

from .correlation import CorrelationResult, GroundTruthCorrelation
from .observer import Observation, ObservationPoint

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.journey import Journey

__all__ = [
    "correlate_by_timing",
    "correlate_timing_with_truth",
    "interarrival_signature",
    "rate_similarity",
]


def correlate_by_timing(
    point: ObservationPoint,
    min_delay_s: float = 0.0,
    max_delay_s: float = 2e-3,
    size_tolerance: int = 64,
) -> CorrelationResult:
    """Pair ingress/egress packets by delay window and approximate size.

    A candidate egress for an ingress packet leaves within
    ``[min_delay_s, max_delay_s]`` and differs in size by at most
    ``size_tolerance`` bytes (re-encryption preserves size up to padding).
    Returns the same confidence structure as the content attack, so benches
    can compare the two attackers directly.
    """
    egress = sorted(point.egress(), key=lambda o: o.time)
    ingress = point.ingress()
    matched = 0
    ambiguous = 0
    candidate_counts: list[int] = []
    for obs in ingress:
        lo = obs.time + min_delay_s
        hi = obs.time + max_delay_s
        candidates = [
            e
            for e in egress
            if lo <= e.time <= hi and abs(e.size - obs.size) <= size_tolerance
        ]
        if candidates:
            matched += 1
            candidate_counts.append(len(candidates))
            if len(candidates) > 1:
                ambiguous += 1
    mean_candidates = (
        sum(candidate_counts) / len(candidate_counts) if candidate_counts else 0.0
    )
    return CorrelationResult(
        matched=matched,
        ambiguous=ambiguous,
        total_ingress=len(ingress),
        mean_candidates=mean_candidates,
    )


def correlate_timing_with_truth(
    point: ObservationPoint,
    journeys: dict[int, "Journey"],
    min_delay_s: float = 0.0,
    max_delay_s: float = 2e-3,
    size_tolerance: int = 64,
) -> GroundTruthCorrelation:
    """Score the timing/size attacker against journey ground truth.

    Candidates are built exactly as in :func:`correlate_by_timing` (egress
    within the delay window, size within tolerance — *no* content access),
    then labelled with the journey recorder's delivered lineages exactly
    like :func:`~repro.attacks.correlation.correlate_with_truth`: a
    candidate is true when its packet instance lies on a delivered lineage
    of the *ingress* packet's journey.  Returns the same structure, so the
    content and timing attackers compare on one axis.
    """
    egress = sorted(point.egress(), key=lambda o: o.time)
    true_uids: dict[int, frozenset[int]] = {
        tag: frozenset(j.delivered_uids()) for tag, j in journeys.items()
    }
    matched = 0
    linkable = 0
    decoy_candidates = 0
    true_candidates = 0
    hit_probs: list[float] = []
    ingress = point.ingress()
    for obs in ingress:
        lo = obs.time + min_delay_s
        hi = obs.time + max_delay_s
        candidates = [
            e
            for e in egress
            if lo <= e.time <= hi and abs(e.size - obs.size) <= size_tolerance
        ]
        if not candidates:
            continue
        matched += 1
        delivered = true_uids.get(obs.content_tag, frozenset())
        hits = sum(1 for e in candidates if e.uid in delivered)
        true_candidates += hits
        decoy_candidates += len(candidates) - hits
        if hits:
            linkable += 1
        hit_probs.append(hits / len(candidates))
    expected = sum(hit_probs) / len(hit_probs) if hit_probs else 0.0
    return GroundTruthCorrelation(
        total_ingress=len(ingress),
        matched=matched,
        linkable=linkable,
        expected_accuracy=expected,
        decoy_candidates=decoy_candidates,
        true_candidates=true_candidates,
    )


def interarrival_signature(
    observations: Sequence[Observation], bucket_s: float = 0.01
) -> dict[int, int]:
    """Packet counts per time bucket — the flow's rate profile."""
    if bucket_s <= 0:
        raise ValueError("bucket size must be positive")
    signature: dict[int, int] = defaultdict(int)
    for obs in observations:
        signature[int(obs.time / bucket_s)] += 1
    return dict(signature)


def rate_similarity(sig_a: dict[int, int], sig_b: dict[int, int]) -> float:
    """Cosine similarity of two rate profiles in [0, 1].

    1.0 means the two observation points saw identically-shaped traffic —
    the signal a rate-based analyst uses to claim two vantage points watch
    the same flow."""
    if not sig_a or not sig_b:
        return 0.0
    buckets = set(sig_a) | set(sig_b)
    dot = sum(sig_a.get(k, 0) * sig_b.get(k, 0) for k in buckets)
    norm_a = math.sqrt(sum(v * v for v in sig_a.values()))
    norm_b = math.sqrt(sum(v * v for v in sig_b.values()))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)
