"""iperf-equivalent bulk-transfer measurement.

The paper measures throughput with iperf (and "a modified Iperf for MIC and
SSL").  :func:`measure_transfer` drives ``nbytes`` through any
:class:`~repro.workloads.duplex.Duplex` pair on the simulated clock and
reports goodput; :func:`measure_echo` is the 10-byte round-trip latency
probe behind Fig 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Simulator
from .duplex import Duplex

__all__ = ["TransferResult", "EchoResult", "measure_transfer", "measure_echo"]

SEND_CHUNK = 64 * 1024


@dataclass(frozen=True)
class TransferResult:
    """One bulk transfer's outcome."""

    bytes: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        """Wall (simulated) duration of the transfer."""
        return self.end_s - self.start_s

    @property
    def goodput_bps(self) -> float:
        """Application-level throughput in bits/second."""
        if self.duration_s <= 0:
            return float("inf")
        return self.bytes * 8.0 / self.duration_s


@dataclass(frozen=True)
class EchoResult:
    """One request/reply round trip."""

    rtt_s: float
    payload_bytes: int


def measure_transfer(sim: Simulator, tx: Duplex, rx: Duplex, nbytes: int):
    """Process generator: pump ``nbytes`` tx → rx, return TransferResult.

    The sender paces itself in ``SEND_CHUNK`` pieces so a window-limited
    transport exhibits its real behaviour instead of queueing everything
    at time zero.
    """
    if nbytes <= 0:
        raise ValueError("nbytes must be positive")
    result: dict = {}

    def sender():
        sent = 0
        while sent < nbytes:
            chunk = min(SEND_CHUNK, nbytes - sent)
            yield from tx.send(b"\x5a" * chunk)
            sent += chunk
        return sent

    def receiver():
        got = 0
        while got < nbytes:
            step = min(SEND_CHUNK, nbytes - got)
            yield from rx.recv_exactly(step)
            got += step
        return got

    start = sim.now
    send_proc = sim.process(sender(), name="iperf.sender")
    recv_proc = sim.process(receiver(), name="iperf.receiver")
    yield recv_proc
    yield send_proc
    return TransferResult(bytes=nbytes, start_s=start, end_s=sim.now)


def measure_echo(sim: Simulator, client: Duplex, server: Duplex, nbytes: int = 10):
    """Process generator: the paper's latency probe — the client sends
    ``nbytes``, the server echoes ``nbytes`` back; returns the RTT."""

    def echo_side():
        data = yield from server.recv_exactly(nbytes)
        yield from server.send(data)

    sim.process(echo_side(), name="echo.server")
    t0 = sim.now
    yield from client.send(b"\x42" * nbytes)
    yield from client.recv_exactly(nbytes)
    return EchoResult(rtt_s=sim.now - t0, payload_bytes=nbytes)
