"""Exporter formats: JSON round-trip, CSV rows, Prometheus text."""

import json
import math

import pytest

from repro.obs import (
    DEFAULT_BUCKET_BOUNDS,
    Histogram,
    MetricsSnapshot,
    SpanLog,
    buckets_from_prometheus,
    parse_prometheus,
    to_csv,
    to_json,
    to_prometheus,
    write_json,
)


@pytest.fixture
def snap():
    """A small hand-built snapshot covering all four metric kinds."""
    s = MetricsSnapshot(sim_time_s=1.5)
    s.add("port.tx.packets", 7, node="h1", port=0)
    s.add("link.queue.bytes", 120, channel="h1[0]->s1[1]")
    s.add("ctrl.packet_in.count", 3)
    hist = Histogram()
    for v in (0.001, 0.002, 0.003):
        hist.observe(v)
    s.histograms[("net.packet_latency_s", (("host", "h3"),))] = hist.summary()
    log = SpanLog()
    log.record("mic.establish", 0.1, 0.2, channel="ch-1")
    s.spans = list(log)
    return s


def test_json_round_trips(snap, tmp_path):
    doc = json.loads(to_json(snap))
    assert doc["sim_time_s"] == 1.5
    by_name = {d["name"]: d for d in doc["samples"]}
    assert by_name["port.tx.packets"]["value"] == 7.0
    assert by_name["port.tx.packets"]["labels"] == {"node": "h1", "port": "0"}
    assert by_name["ctrl.packet_in.count"]["labels"] == {}
    (h,) = doc["histograms"]
    assert h["name"] == "net.packet_latency_s"
    assert h["summary"]["count"] == 3.0
    assert h["summary"]["p50"] == 0.002
    (r,) = doc["spans"]
    assert r["name"] == "mic.establish"
    assert r["duration_s"] == pytest.approx(0.1)
    # write_json writes the same document.
    path = tmp_path / "snap.json"
    write_json(snap, str(path))
    assert json.loads(path.read_text(encoding="utf-8")) == doc


def test_csv_rows(snap):
    lines = to_csv(snap).splitlines()
    assert lines[0] == "kind,name,labels,field,value"
    # The kind column comes from the contract.
    assert 'counter,port.tx.packets,"node=h1;port=0",value,7' in lines
    assert 'gauge,link.queue.bytes,"channel=h1[0]->s1[1]",value,120' in lines
    # Histograms expand to one row per summary field.
    hist_rows = [ln for ln in lines if ln.startswith("histogram,")]
    assert len(hist_rows) == 8
    assert 'histogram,net.packet_latency_s,"host=h3",p95,0.003' in lines
    assert 'span,mic.establish,"channel=ch-1",duration_s,0.1' in lines


def test_prometheus_text(snap):
    text = to_prometheus(snap)
    assert "# TYPE port_tx_packets counter" in text
    assert "# TYPE link_queue_bytes gauge" in text
    assert "# TYPE net_packet_latency_s summary" in text
    assert 'port_tx_packets{node="h1",port="0"} 7' in text
    assert "ctrl_packet_in_count 3" in text  # label-free: no braces
    assert 'net_packet_latency_s{host="h3",quantile="0.5"} 0.002' in text
    assert 'net_packet_latency_s_sum{host="h3"} 0.006' in text
    assert 'net_packet_latency_s_count{host="h3"} 3' in text
    # HELP text comes from the contract's "fires" column.
    assert "# HELP port_tx_packets the port's transmit channel accepts a packet" in text
    assert "mic_establish" not in text  # spans have no Prometheus mapping


def test_summary_carries_cumulative_buckets():
    hist = Histogram()
    for v in (0.0005, 0.0015, 0.0015, 0.4):
        hist.observe(v)
    summary = hist.summary()
    buckets = summary["buckets"]
    assert len(buckets) == len(DEFAULT_BUCKET_BOUNDS)
    les = [le for le, _ in buckets]
    assert les == sorted(les)
    cums = [c for _, c in buckets]
    assert cums == sorted(cums)  # cumulative: monotone non-decreasing
    assert cums[-1] == hist.count  # everything fits under 10 s here
    by_le = dict(map(tuple, buckets))
    assert by_le[0.001] == 1  # only the 0.5 ms observation
    assert by_le[0.002] == 3
    assert by_le[0.5] == 4
    # opt out for scalar-only consumers
    assert "buckets" not in hist.summary(bucket_bounds=None)


def test_default_bucket_bounds_are_a_1_2_5_ladder():
    assert list(DEFAULT_BUCKET_BOUNDS) == sorted(DEFAULT_BUCKET_BOUNDS)
    assert DEFAULT_BUCKET_BOUNDS[0] == 1e-6
    assert DEFAULT_BUCKET_BOUNDS[-1] == 10.0
    assert 2e-3 in DEFAULT_BUCKET_BOUNDS and 5e-2 in DEFAULT_BUCKET_BOUNDS


def test_histogram_style_prometheus_round_trips(snap):
    """satellite check: bucket counts survive export → parse → reassembly."""
    text = to_prometheus(snap, histogram_style="histogram")
    assert "# TYPE net_packet_latency_s histogram" in text
    assert 'net_packet_latency_s_bucket{host="h3",le="+Inf"} 3' in text
    # quantile series belong to the summary style only
    assert "quantile=" not in text
    # _sum/_count survive in both styles
    assert 'net_packet_latency_s_sum{host="h3"} 0.006' in text
    assert 'net_packet_latency_s_count{host="h3"} 3' in text

    parsed = parse_prometheus(text)
    assert parsed["port_tx_packets"] == [({"node": "h1", "port": "0"}, 7.0)]
    round_tripped = buckets_from_prometheus(parsed, "net_packet_latency_s")
    hist = Histogram()
    for v in (0.001, 0.002, 0.003):
        hist.observe(v)
    expected = [(le, cum) for le, cum in hist.buckets()] + [
        (math.inf, hist.count)
    ]
    assert len(round_tripped) == len(expected)
    for (le_rt, cum_rt), (le_ex, cum_ex) in zip(round_tripped, expected):
        # the %g exposition rounds bounds like 5*1e-6 to the nearest float
        assert le_rt == pytest.approx(le_ex, rel=1e-9)
        assert cum_rt == cum_ex


def test_summary_style_is_unchanged_by_default(snap):
    assert to_prometheus(snap) == to_prometheus(snap, histogram_style="summary")
    with pytest.raises(ValueError):
        to_prometheus(snap, histogram_style="both")


def test_csv_skips_structured_bucket_field(snap):
    # the summary now carries a "buckets" list; CSV stays scalar rows only
    for line in to_csv(snap).splitlines():
        assert "buckets" not in line


def test_empty_snapshot_exports(tmp_path):
    empty = MetricsSnapshot(sim_time_s=0.0)
    assert json.loads(to_json(empty))["samples"] == []
    assert to_csv(empty) == "kind,name,labels,field,value\n"
    assert to_prometheus(empty) == "\n"
