"""The sharded Mimic Controller cluster.

``MimicControllerCluster`` is the single app registered on the SDN
controller (``name = "mic"``, like the controller it scales out).  It
owns N :class:`~repro.controlplane.shard.MimicShard` instances and:

* routes every punted MC request to the shard owning the punting switch
  (channels live on the shard owning their initiator's edge switch),
* routes every flow-mod to the shard owning its *target* switch, so a
  multi-segment walk's ``install_batch`` fan-out pipelines across shards
  instead of serializing through one MC — under the opt-in
  ``cpu_model="serialized"`` each shard's mods queue on its own CPU,
  which is what the scalability bench measures,
* fans fault events out to the alive shards (each repairs only its own
  channels),
* implements shard failover: on :meth:`crash_shard` the surviving owner
  of each orphaned channel's edge switch adopts the channel, its stored
  compiled intents, and its parked flows, and re-drives any repair that
  died with the shard — channels survive the crash,
* presents the full duck-typed ``MimicController`` surface (channels,
  compiled intents, counters, strategy, verification) to the observer,
  sanitizer, verifier, scorecard and tests, aggregated across shards.

With ``n_shards=1`` every delegation is a transparent pass-through to a
shard whose attach path is the unsharded controller's own — golden tests
pin that mode byte-identical to :class:`~repro.core.controller.MimicController`.
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.channel import MimicChannel
from ..core.controller import (
    DECOY_DROP_PRIORITY,
    MC_IP,
    MC_PORT,
    MIC_PRIORITY,
)
from ..net.packet import Packet
from ..net.switch import Switch
from ..obs.spans import begin as begin_span
from ..sdn.controller import Controller, ControllerApp
from ..sim.resources import Resource
from .ownership import OwnershipMap
from .shard import MimicShard

__all__ = ["MimicControllerCluster"]


class _ClusterFlowIds:
    """Aggregated flow-ID accounting over the shard partitions."""

    def __init__(self, cluster: "MimicControllerCluster"):
        self._cluster = cluster

    @property
    def live_count(self) -> int:
        return sum(s.flow_ids.live_count for s in self._cluster.shards)

    def is_live(self, fid: int) -> bool:
        return self._cluster.allocator_for(fid).is_live(fid)

    def release(self, fid: int) -> None:
        self._cluster.allocator_for(fid).release(fid)


class _ClusterStrategy:
    """Aggregated read view of the per-shard strategy instances.

    Each shard binds its own :class:`~repro.anonymity.base.Strategy`
    instance (rotation clocks and counters are shard-local); this view
    sums the counters and delegates the stateless operations the
    verifier needs.
    """

    def __init__(self, cluster: "MimicControllerCluster"):
        self._cluster = cluster

    @property
    def name(self) -> str:
        return self._cluster.shards[0].strategy.name

    @property
    def rotations_completed(self) -> int:
        return sum(s.strategy.rotations_completed for s in self._cluster.shards)

    @property
    def rotation_installs(self) -> int:
        return sum(s.strategy.rotation_installs for s in self._cluster.shards)

    @property
    def live_aliases(self) -> int:
        return sum(s.strategy.live_aliases for s in self._cluster.shards)

    def replay_views(self, plan) -> list[tuple]:
        # Stateless w.r.t. the strategy instance (uses only plan fields),
        # so any shard's instance serves the verifier.
        return self._cluster.shards[0].strategy.replay_views(plan)


class MimicControllerCluster(ControllerApp):
    """N-shard Mimic Controller behind a rendezvous ownership map."""

    name = "mic"

    def __init__(
        self,
        n_shards: int = 1,
        ownership_seed: int = 0,
        cpu_model: str = "parallel",
        flowmod_cpu_s: float = 100e-6,
        **mic_kwargs,
    ):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if cpu_model not in ("parallel", "serialized"):
            raise ValueError(f"unknown cpu model {cpu_model!r}")
        self.n_shards = n_shards
        self.ownership = OwnershipMap(n_shards, seed=ownership_seed)
        #: "parallel" (default) issues installs immediately — byte-identical
        #: to the unsharded controller; "serialized" charges the owning
        #: shard's single CPU per mod, modelling the control-plane
        #: serialization the paper's Sec VI-C ceiling comes from
        self.cpu_model = cpu_model
        self.flowmod_cpu_s = flowmod_cpu_s
        self.shards = [MimicShard(i, self, **mic_kwargs) for i in range(n_shards)]
        self._alive_ids: tuple[int, ...] = tuple(range(n_shards))
        self._obs = None
        self.failovers = 0
        self.channels_adopted = 0
        self.flows_reparked = 0
        self.repairs_rescheduled = 0
        #: installs whose target switch was owned by a different shard
        #: than the one planning the flow (cross-shard fan-out volume)
        self.remote_installs = 0

    # -- attach -----------------------------------------------------------
    def attach(self, controller: Controller) -> None:
        """Attach shard 0 on the canonical path, then the secondaries."""
        super().attach(controller)
        self.net = controller.network
        self.sim = controller.sim
        primary = self.shards[0]
        primary.attach(controller)
        for shard in self.shards[1:]:
            shard.attach_secondary(controller, primary)
        # Shard 0 keeps its unsharded construction path for byte-identity,
        # then trades its allocator for the partitioned equivalent (the
        # 1-shard partition allocates the identical 0, 1, 2, … sequence).
        from .ownership import PartitionedFlowIdAllocator

        primary.flow_ids = PartitionedFlowIdAllocator(
            primary.flow_ids.n_values, 0, self.n_shards
        )
        if self.cpu_model == "serialized":
            for shard in self.shards:
                shard.cpu = Resource(self.sim, capacity=1)
        self._edge_switch = {
            h: next(
                nb for nb in self.net.topo.neighbors(h)
                if self.net.topo.kind(nb) == "switch"
            )
            for h in self.net.topo.hosts()
        }

    # -- ownership --------------------------------------------------------
    def alive_shards(self) -> tuple[int, ...]:
        """IDs of the currently alive shards."""
        return self._alive_ids

    def owner_of_switch(self, sw_name: str) -> MimicShard:
        """The alive shard owning a switch under the rendezvous map."""
        return self.shards[self.ownership.owner(sw_name, self._alive_ids)]

    def shard_of_host(self, host: str) -> MimicShard:
        """The shard owning a host's channels (its edge switch's owner)."""
        return self.owner_of_switch(self._edge_switch[host])

    def shard_of_channel(self, channel_id: int) -> Optional[MimicShard]:
        """The shard currently holding a live channel, or None."""
        for shard in self.shards:
            if channel_id in shard.channels:
                return shard
        return None

    def allocator_for(self, fid: int):
        """The home partition of a flow ID (by residue class)."""
        return self.shards[fid % self.n_shards].flow_ids

    # -- install fan-out --------------------------------------------------
    def dispatch_group(self, origin: MimicShard, sw_name: str, group):
        """Route a group-mod to the switch's owning shard."""
        return self._dispatch(
            origin, sw_name, 1,
            lambda: self.controller.install_group(sw_name, group),
        )

    def dispatch_batch(self, origin: MimicShard, sw_name: str, batch):
        """Route a flow-mod batch to the switch's owning shard."""
        return self._dispatch(
            origin, sw_name, len(batch),
            lambda: self.controller.install_batch(sw_name, batch),
        )

    def dispatch_install(self, origin: MimicShard, sw_name: str, entry):
        """Route a single flow-mod to the switch's owning shard."""
        return self._dispatch(
            origin, sw_name, 1,
            lambda: self.controller.install(sw_name, entry),
        )

    def _dispatch(self, origin: MimicShard, sw_name: str, n_mods: int, issue):
        """Route ``issue`` to the switch's owning shard; returns an event."""
        prof = getattr(self.sim, "_prof", None)
        if prof is not None:
            with prof.region("controlplane.route"):
                owner = self.owner_of_switch(sw_name)
                prof.count("controlplane.route", "mods.routed", n_mods)
                if owner is not origin:
                    prof.count("controlplane.route", "mods.remote", n_mods)
        else:
            owner = self.owner_of_switch(sw_name)
        owner.installs_issued += n_mods
        if owner is not origin:
            self.remote_installs += n_mods
        if self.cpu_model == "parallel":
            return issue()
        return self._issue_serialized(owner, n_mods * self.flowmod_cpu_s, issue)

    def _issue_serialized(self, owner: MimicShard, cost: float, issue):
        """Charge the owning shard's CPU, then issue; mirrors the result."""
        done = self.sim.event()

        def run():
            yield owner.cpu.request()
            try:
                yield self.sim.timeout(cost)
            finally:
                owner.cpu.release()
            owner.cpu_busy_s += cost
            try:
                result = yield issue()
            except Exception as exc:  # mirrored to the caller's barrier
                done.fail(exc)
            else:
                done.succeed(result)

        self.sim.process(run(), name="mic.shard.issue")
        return done

    def request_cpu(self, shard: MimicShard, cpu: float):
        """The per-request compute charge (`_request_cpu` seam)."""
        if self.cpu_model == "parallel":
            yield self.sim.timeout(cpu)
            return
        yield shard.cpu.request()
        try:
            yield self.sim.timeout(cpu)
        finally:
            shard.cpu.release()

    # -- event routing ----------------------------------------------------
    def on_packet_in(self, switch: Switch, packet: Packet, in_port: int) -> bool:
        """Route a punted MC request to the punting switch's owner."""
        if packet.ip_dst != MC_IP or packet.dport != MC_PORT:
            return False
        prof = getattr(self.sim, "_prof", None)
        if prof is not None:
            with prof.region("controlplane.route"):
                shard = self.owner_of_switch(switch.name)
                prof.count("controlplane.route", "requests.routed")
        else:
            shard = self.owner_of_switch(switch.name)
        return shard.on_packet_in(switch, packet, in_port)

    def on_link_event(self, a: str, b: str, up: bool) -> None:
        """Fan a link up/down event out to every alive shard."""
        for shard in self.shards:
            if shard.alive:
                shard.on_link_event(a, b, up)

    def on_switch_event(self, name: str, up: bool) -> None:
        """Fan a switch up/down event out to every alive shard."""
        for shard in self.shards:
            if shard.alive:
                shard.on_switch_event(name, up)

    # -- channel lifecycle (direct-call surface) --------------------------
    def establish(self, initiator: str, responder, **kwargs):
        """Process generator: delegate to the initiator's owning shard."""
        shard = self.shard_of_host(initiator)
        result = yield from shard.establish(initiator, responder, **kwargs)
        return result

    def teardown(self, channel_id: int) -> None:
        """Tear a channel down on whichever shard currently holds it."""
        shard = self.shard_of_channel(channel_id)
        if shard is not None:
            shard.teardown(channel_id)

    def rotate_flow(self, channel: MimicChannel, idx: int) -> bool:
        """Rotate one m-flow on the channel's current owner."""
        shard = self.shard_of_channel(channel.channel_id)
        return shard.rotate_flow(channel, idx) if shard is not None else False

    def channel_of(self, channel_id: int) -> Optional[MimicChannel]:
        """The live channel object, wherever it currently lives."""
        shard = self.shard_of_channel(channel_id)
        return shard.channels.get(channel_id) if shard is not None else None

    # -- failover ---------------------------------------------------------
    def crash_shard(self, shard_id: int) -> None:
        """Kill a shard; survivors adopt its channels from stored intents.

        The dead shard's in-flight generators terminate at their next
        resumption (the ``alive`` guards) without side effects; everything
        durable it owned — channels, compiled intents, parked flows —
        moves to the surviving owner of each channel's edge switch, and
        repairs that died with the shard are re-driven there.
        """
        shard = self.shards[shard_id]
        if not shard.alive:
            return
        shard.alive = False
        self._alive_ids = tuple(
            i for i, s in enumerate(self.shards) if s.alive
        )
        if not self._alive_ids:
            raise RuntimeError("cannot crash the last alive shard")
        self.failovers += 1
        span = begin_span(self._obs, "mic.shard.failover", shard=shard_id)
        was_repairing = set(shard._repairing)
        was_parked = dict(shard._parked)
        shard._repairing.clear()
        shard._parked.clear()
        adopted = 0
        for channel_id, channel in sorted(shard.channels.items()):
            adopter = self.shard_of_host(channel.initiator)
            del shard.channels[channel_id]
            adopter.channels[channel_id] = channel
            adopted += 1
            for idx, plan in enumerate(channel.flows):
                compiled = shard.compiled.pop(plan.cookie, None)
                if compiled is not None:
                    adopter.compiled[plan.cookie] = compiled
                if plan.cookie in was_parked:
                    # Re-park on the adopter (no repairs_parked recount:
                    # the original park already counted) and restart the
                    # backoff loop there.
                    adopter._parked[plan.cookie] = (channel, idx)
                    self.flows_reparked += 1
                    if plan.cookie not in adopter._park_loops:
                        adopter._park_loops.add(plan.cookie)
                        self.sim.process(
                            adopter._parked_retry_loop(plan.cookie),
                            name="mic.park",
                        )
                elif plan.cookie in was_repairing:
                    # The repair died with its shard; re-drive it on the
                    # adopter (its removal scope comes from the adopted
                    # compiled intent, so no rules leak).
                    adopter._schedule_repair(channel, idx)
                    self.repairs_rescheduled += 1
            # Re-arm the adopter's strategy clock (e.g. tarn's rotation
            # loop watches its own shard's channel table).
            adopter.strategy.on_established(channel)
        self.channels_adopted += adopted
        self.net.trace.emit(
            self.sim.now,
            "mic.shard.crash",
            "MC",
            shard=shard_id,
            channels_adopted=adopted,
            repairs_rescheduled=len(was_repairing),
            flows_reparked=len(was_parked),
        )
        span.finish(channels_adopted=adopted)

    def rejoin_shard(self, shard_id: int) -> None:
        """Bring a crashed shard back (adopted channels do not fail back)."""
        shard = self.shards[shard_id]
        if shard.alive:
            return
        shard.alive = True
        self._alive_ids = tuple(
            i for i, s in enumerate(self.shards) if s.alive
        )
        self.net.trace.emit(
            self.sim.now, "mic.shard.rejoin", "MC", shard=shard_id
        )

    # -- shared namespace / key management -------------------------------
    def client_key(self, host_name: str):
        """A host's MC key from the shared (shard-0) key registry."""
        return self.shards[0].client_key(host_name)

    def register_hidden_service(self, nickname: str, host_name: str, port: int):
        """Register a hidden service in the shared namespace."""
        return self.shards[0].register_hidden_service(nickname, host_name, port)

    # -- aggregated MimicController surface -------------------------------
    @property
    def channels(self) -> dict[int, MimicChannel]:
        """Cluster-wide channel table (merged read view)."""
        if self.n_shards == 1:
            return self.shards[0].channels
        merged: dict[int, MimicChannel] = {}
        for shard in self.shards:
            merged.update(shard.channels)
        return merged

    @property
    def compiled(self) -> dict[int, tuple[list, list, list]]:
        """Cluster-wide compiled-intent table (merged read view)."""
        if self.n_shards == 1:
            return self.shards[0].compiled
        merged: dict[int, tuple[list, list, list]] = {}
        for shard in self.shards:
            merged.update(shard.compiled)
        return merged

    @property
    def _parked(self) -> dict[int, tuple[MimicChannel, int]]:
        if self.n_shards == 1:
            return self.shards[0]._parked
        merged: dict[int, tuple[MimicChannel, int]] = {}
        for shard in self.shards:
            merged.update(shard._parked)
        return merged

    @property
    def flow_ids(self) -> _ClusterFlowIds:
        """Aggregated flow-ID accounting across the shard partitions."""
        return _ClusterFlowIds(self)

    @property
    def strategy(self) -> Union[_ClusterStrategy, object]:
        """The bound strategy (aggregated view when sharded)."""
        if self.n_shards == 1:
            return self.shards[0].strategy
        return _ClusterStrategy(self)

    @property
    def obs(self):
        """The attached observer (shared by every shard)."""
        return self._obs

    @obs.setter
    def obs(self, value) -> None:
        """Fan the observer out so every shard's spans land on it."""
        self._obs = value
        for shard in self.shards:
            shard.obs = value

    @property
    def live_channels(self) -> int:
        """Total live channels across shards."""
        return sum(len(s.channels) for s in self.shards)

    @property
    def parked_flows(self) -> int:
        """Total parked flows across shards."""
        return sum(len(s._parked) for s in self.shards)

    @property
    def repairs_in_flight(self) -> int:
        """Total repairs currently running across shards."""
        return sum(len(s._repairing) for s in self.shards)

    @property
    def requests_served(self) -> int:
        """Total MC requests served across shards."""
        return sum(s.requests_served for s in self.shards)

    @property
    def cpu_busy_s(self) -> float:
        """Total simulated controller CPU time across shards."""
        return sum(s.cpu_busy_s for s in self.shards)

    @property
    def repairs_completed(self) -> int:
        """Total completed repairs across shards."""
        return sum(s.repairs_completed for s in self.shards)

    @property
    def repairs_parked(self) -> int:
        """Total repair-to-park transitions across shards."""
        return sum(s.repairs_parked for s in self.shards)

    @property
    def resyncs_completed(self) -> int:
        """Total completed resyncs across shards."""
        return sum(s.resyncs_completed for s in self.shards)

    def rule_footprint(self) -> dict[str, int]:
        """MIC rules currently installed, per switch (TCAM load view)."""
        counts: dict[str, int] = {}
        for sw in self.net.switches():
            n = len(sw.table.entries_at(MIC_PRIORITY)) + len(
                sw.table.entries_at(DECOY_DROP_PRIORITY)
            )
            if n:
                counts[sw.name] = n
        return counts

    def verify(self):
        """Statically verify the installed data plane (cluster-wide)."""
        from ..analysis import verify_network

        return verify_network(self.net, mic=self)

    def stats(self) -> dict:
        """Operational snapshot of the cluster."""
        footprint = self.rule_footprint()
        return {
            "anonymity_strategy": self.strategy.name,
            "rotations_completed": self.strategy.rotations_completed,
            "rotation_installs": self.strategy.rotation_installs,
            "live_channels": self.live_channels,
            "live_flows": self.flow_ids.live_count,
            "registry_keys": self.shards[0].registry.total_keys(),
            "requests_served": self.requests_served,
            "mc_cpu_busy_s": self.cpu_busy_s,
            "rules_total": sum(footprint.values()),
            "rules_max_per_switch": max(footprint.values(), default=0),
            "switches_touched": len(footprint),
            "shards": self.n_shards,
            "shards_alive": len(self._alive_ids),
            "failovers": self.failovers,
            "channels_adopted": self.channels_adopted,
            "remote_installs": self.remote_installs,
        }

    def __getattr__(self, name: str):
        # Configuration and shared-namespace reads (labels, registry,
        # mn_spaces, mn_bits, costs, …) resolve against shard 0, whose
        # state is the cluster-wide one.  Only fires for names with no
        # explicit definition above.
        if name.startswith("__"):
            raise AttributeError(name)
        shards = self.__dict__.get("shards")
        if not shards:
            raise AttributeError(name)
        return getattr(shards[0], name)
