"""Hybrid-mode scale benchmark: 10k+ concurrent channels on fat_tree(16).

One committed entry in the repo's perf trajectory (see
``repro.bench.trajectory`` and ``benchmarks/trajectory/``).  A full run
drives 10,000 concurrent transfers over a 1,024-host fat-tree in hybrid
fidelity (the hash-sampled packet subset rides real TCP; everything else
advances as fluid rates) with the self-profiler hooked, and records wall
time, peak RSS, channels/second, and the profile section to
``benchmarks/trajectory/BENCH_8.json``.  An Observer snapshot of the same
run plus the profile's "top" table land under ``benchmarks/results/`` so
``python -m repro.obs summarize`` / ``prof-top`` work on hybrid runs end
to end.

Set ``BENCH_QUICK=1`` for the CI-sized slice: fat_tree(8), 2,000 channels
(written to ``BENCH_8.quick.json`` so full and quick entries never clobber
each other).
"""

import json
import os
import pathlib
import resource
import time

from repro.obs.exporters import to_json
from repro.obs.prof import format_prof_top
from repro.bench import run_hybrid_scenario
from repro.bench.hybrid_scenario import FRVM_LANES

QUICK = bool(os.environ.get("BENCH_QUICK"))
# Anonymity traffic model to apply at scale ("mic" | "tarn" | "frvm").
STRATEGY = os.environ.get("BENCH_STRATEGY", "mic")
RESULTS_DIR = pathlib.Path(__file__).parent / "results"
TRAJECTORY_DIR = pathlib.Path(__file__).parent / "trajectory"

K = 8 if QUICK else 16
CHANNELS = 2_000 if QUICK else 10_000
PAYLOAD_BYTES = 500_000 if QUICK else 1_000_000
SAMPLE_RATE = 0.002
SEED = 7
# Generous wall ceiling (CI machines vary); a full local run takes ~20s.
WALL_BUDGET_S = 120.0 if QUICK else 300.0


def test_hybrid_scale(benchmark):
    t0 = time.perf_counter()
    r = benchmark.pedantic(
        lambda: run_hybrid_scenario(
            k=K, channels=CHANNELS, payload_bytes=PAYLOAD_BYTES,
            sample_rate=SAMPLE_RATE, seed=SEED, observe=True, profile=True,
            time_limit_s=120.0, strategy=STRATEGY,
        ),
        rounds=1, iterations=1,
    )
    wall_s = time.perf_counter() - t0
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024

    # Every lane ran to completion inside the simulated-time limit.
    assert r.lanes == CHANNELS * (FRVM_LANES if STRATEGY == "frvm" else 1)
    assert r.fluid_flows + r.packet_flows == r.lanes
    assert r.fluid_finished == r.fluid_flows
    assert r.packet_finished == r.packet_flows
    assert r.packet_flows > 0, "sampling produced no packet-level channels"
    assert wall_s < WALL_BUDGET_S

    # The contracted subsystems must explain (nearly) the whole run — if
    # attribution drops, something hot is running outside the profiler's
    # contract and the trajectory's profile section stops being honest.
    assert r.profile is not None
    assert r.profile["attributed_fraction"] >= 0.90, (
        f"only {r.profile['attributed_fraction']:.1%} of wall time attributed "
        "to contracted subsystems"
    )

    doc = {
        "bench": "hybrid_scale",
        "trajectory_entry": 8,
        "quick": QUICK,
        "params": {
            "k": K, "channels": CHANNELS, "payload_bytes": PAYLOAD_BYTES,
            "sample_rate": SAMPLE_RATE, "seed": SEED, "strategy": STRATEGY,
        },
        "fabric": {"hosts": r.hosts, "switches": r.switches},
        "wall_s": round(wall_s, 3),
        # process-wide peak (includes interpreter + test harness overhead)
        "peak_rss_mb": round(peak_rss_mb, 1),
        "channels_per_s": round(CHANNELS / wall_s, 1),
        "sim_time_limit_hit": r.sim_time_s >= 120.0 and (
            r.fluid_finished < r.fluid_flows or r.packet_finished < r.packet_flows
        ),
        "fluid_flows": r.fluid_flows,
        "packet_flows": r.packet_flows,
        "epochs": r.epochs,
        "resolves": r.resolves,
        "bytes_advanced": r.bytes_advanced,
        "debited_bytes": r.debited_bytes,
        "rules_installed": r.rules_installed,
        "mean_fluid_goodput_bps": r.mean_goodput_bps("fluid"),
        "mean_packet_goodput_bps": r.mean_goodput_bps("packet"),
        "profile": r.profile,
    }
    TRAJECTORY_DIR.mkdir(exist_ok=True)
    entry_name = "BENCH_8.quick.json" if QUICK else "BENCH_8.json"
    (TRAJECTORY_DIR / entry_name).write_text(json.dumps(doc, indent=2) + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    snap_path = RESULTS_DIR / "hybrid_scale_snapshot.json"
    snap_path.write_text(to_json(r.observer.snapshot()) + "\n")
    (RESULTS_DIR / "hybrid_scale_prof_top.txt").write_text(
        format_prof_top(r.profile) + "\n"
    )
    print(
        f"\nhybrid scale: fat_tree({K}) {CHANNELS} channels "
        f"({r.packet_flows} packet / {r.fluid_flows} fluid) "
        f"wall={wall_s:.1f}s rss={peak_rss_mb:.0f}MB "
        f"{CHANNELS / wall_s:.0f} chan/s epochs={r.epochs} "
        f"prof={r.profile['attributed_fraction']:.1%} attributed"
    )
    print(format_prof_top(r.profile))
