"""Tor client: telescoping circuit construction and onion streams.

The client builds a circuit hop by hop (CREATE to the guard, then EXTEND
relayed through the partial circuit — each extension costs a full round trip
through every existing hop plus asymmetric crypto at the new hop, which is
why Tor's route-setup time in Fig 7 grows with route length), then opens a
stream through the exit and exchanges onion-sealed data cells.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ..crypto import DEFAULT_COSTS, CryptoCostModel, Key, KeyExchange, Sealed, seal, unseal
from ..net.addresses import IPv4Addr
from ..net.host import Host
from ..sim import Store
from ..transport.framing import MessageChannel
from ..transport.tcp import TcpStack
from .cells import (
    CELL_SIZE,
    BeginPayload,
    ConnectedPayload,
    CreateCell,
    CreatedCell,
    DataPayload,
    EndPayload,
    ExtendPayload,
    ExtendedPayload,
    RelayCell,
    SendmePayload,
)
from .directory import OR_PORT, TorDirectory
from .flowctl import SENDME_EVERY_CELLS, STREAM_WINDOW_CELLS, Window

__all__ = ["TorClient", "TorCircuit", "TorStream", "DEFAULT_ROUTE_LEN"]

#: Tor's default circuit length (the constant the paper patched to vary it)
DEFAULT_ROUTE_LEN = 3

_circ_ids = itertools.count(1)


class TorStream:
    """Application byte stream over a circuit (one stream per circuit)."""

    def __init__(self, circuit: "TorCircuit"):
        self.circuit = circuit
        self._buf = bytearray()
        self._eof = False
        self._incoming: Store = Store(circuit.sim)
        #: stream-level SENDME window for outgoing data cells
        self._fwd_window = Window(circuit.sim, STREAM_WINDOW_CELLS)
        self._bwd_cells_received = 0

    # -- sending ----------------------------------------------------------
    def send(self, data: bytes):
        """Process generator: slice into data cells, respecting the SENDME
        window (this is why Tor throughput decays with circuit length —
        the window is fixed while the RTT grows)."""
        max_chunk = CELL_SIZE - 14
        for off in range(0, len(data), max_chunk):
            chunk = bytes(data[off : off + max_chunk])
            yield from self._fwd_window.acquire()
            yield from self.circuit.send_forward(DataPayload(chunk))

    # -- receiving ----------------------------------------------------------
    def _deliver(self, payload: Any) -> None:
        if isinstance(payload, DataPayload):
            self._incoming.put(payload.data)
            self._bwd_cells_received += 1
            if self._bwd_cells_received % SENDME_EVERY_CELLS == 0:
                # Grant the exit another SENDME batch (control cells bypass
                # the data window).
                self.circuit.sim.process(
                    self.circuit.send_forward(SendmePayload()),
                    name="tor-stream.sendme",
                )
        elif isinstance(payload, SendmePayload):
            self._fwd_window.release(SENDME_EVERY_CELLS)
        elif isinstance(payload, EndPayload):
            self._incoming.put(b"")

    def recv(self, n: int):
        """Process generator: up to ``n`` bytes (``b""`` = EOF)."""
        while not self._buf and not self._eof:
            chunk = yield self._incoming.get()
            if chunk == b"":
                self._eof = True
            else:
                self._buf.extend(chunk)
        take = min(n, len(self._buf))
        out = bytes(self._buf[:take])
        del self._buf[:take]
        return out

    def recv_exactly(self, n: int):
        """Process generator: exactly ``n`` bytes or ConnectionError."""
        chunks = []
        remaining = n
        while remaining > 0:
            chunk = yield from self.recv(remaining)
            if not chunk:
                raise ConnectionError("tor stream closed before full read")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self):
        """Process generator: send the stream-end cell."""
        yield from self.circuit.send_forward(EndPayload())


class TorCircuit:
    """Client-side circuit state: hop keys and the guard connection."""

    def __init__(self, client: "TorClient", circ_id: int, session: str):
        self.client = client
        self.sim = client.sim
        self.circ_id = circ_id
        self.session = session
        self.keys: list[Key] = []
        self.route: list[str] = []
        self.channel: Optional[MessageChannel] = None
        self._control: Store = Store(client.sim)  # CreatedCell / Extended / Connected
        self.stream: Optional[TorStream] = None

    @property
    def length(self) -> int:
        """Number of completed hops."""
        return len(self.keys)

    # -- onion helpers ----------------------------------------------------
    def _wrap(self, payload: Any, upto: Optional[int] = None) -> Sealed:
        """Seal for delivery to hop ``upto`` (default: last hop)."""
        hops = self.keys if upto is None else self.keys[:upto]
        wrapped: Any = payload
        for key in reversed(hops):
            wrapped = seal(key, wrapped)
        return wrapped

    def _unwrap(self, payload: Any) -> Any:
        for key in self.keys:
            payload = unseal(key, payload)
            if not isinstance(payload, Sealed):
                break
        return payload

    def _client_crypto(self, layers: int):
        cost = self.client.costs.onion_layers(CELL_SIZE, layers)
        self.client.host.cpu.consume(cost)
        return self.sim.timeout(cost)

    # -- cell IO ---------------------------------------------------------
    def send_forward(self, payload: Any, upto: Optional[int] = None):
        """Process generator: onion-wrap and transmit a forward cell."""
        hops = len(self.keys) if upto is None else upto
        yield self._client_crypto(hops)
        self.channel.send(RelayCell(self.circ_id, self._wrap(payload, upto), "fwd"), CELL_SIZE)

    def _reader_loop(self):
        while True:
            cell, _ = yield from self.channel.recv()
            if isinstance(cell, CreatedCell):
                self._control.put(cell)
                continue
            if not (isinstance(cell, RelayCell) and cell.direction == "bwd"):
                continue
            yield self._client_crypto(len(self.keys))
            inner = self._unwrap(cell.payload)
            if isinstance(inner, (ExtendedPayload, ConnectedPayload)):
                self._control.put(inner)
            elif isinstance(inner, (DataPayload, EndPayload, SendmePayload)):
                if self.stream is not None:
                    self.stream._deliver(inner)


class TorClient:
    """The onion proxy running on an end host."""

    def __init__(
        self,
        host: Host,
        directory: TorDirectory,
        costs: CryptoCostModel = DEFAULT_COSTS,
    ):
        self.host = host
        self.sim = host.sim
        self.directory = directory
        self.costs = costs
        self.tcp = TcpStack(host)
        self.rng = self.sim.rng(f"tor-client-{host.name}")

    # -- circuit construction ---------------------------------------------
    def build_circuit(
        self,
        route: Optional[list[str]] = None,
        length: int = DEFAULT_ROUTE_LEN,
        avoid_ips: tuple = (),
    ):
        """Process generator: telescoping construction → :class:`TorCircuit`."""
        if route is None:
            route = self.directory.pick_route(
                length, self.rng,
                exclude_hosts=[self.host.name],
                exclude_ips=avoid_ips,
            )
        if not route:
            raise ValueError("empty route")
        session = f"sess-{self.host.name}-{self.rng.getrandbits(48)}"
        circuit = TorCircuit(self, next(_circ_ids), session)
        circuit.route = list(route)

        # Hop 1: direct CREATE to the guard.
        guard = self.directory.get(route[0])
        conn = yield self.tcp.connect(guard.ip, OR_PORT)
        circuit.channel = MessageChannel(conn)
        self.sim.process(circuit._reader_loop(), name=f"tor-client-{self.host.name}.reader")
        nonce = self.rng.getrandbits(64)
        self._burn_extend_cpu()
        yield self.sim.timeout(self.costs.tor_client_extend_cpu_s())
        circuit.channel.send(CreateCell(circuit.circ_id, session, nonce), CELL_SIZE)
        created = yield circuit._control.get()
        assert isinstance(created, CreatedCell)
        circuit.keys.append(KeyExchange.initiate(session, route[0], nonce))

        # Hops 2..N: EXTEND relayed through the partial circuit.
        for relay_name in route[1:]:
            nonce = self.rng.getrandbits(64)
            self._burn_extend_cpu()
            yield self.sim.timeout(self.costs.tor_client_extend_cpu_s())
            yield from circuit.send_forward(
                ExtendPayload(relay_name, session, nonce)
            )
            reply = yield circuit._control.get()
            assert isinstance(reply, ExtendedPayload)
            circuit.keys.append(KeyExchange.initiate(session, relay_name, nonce))
        return circuit

    def _burn_extend_cpu(self) -> None:
        self.host.cpu.consume(self.costs.tor_client_extend_cpu_s())

    # -- streams --------------------------------------------------------------
    def connect(
        self,
        target_ip: IPv4Addr,
        target_port: int,
        route: Optional[list[str]] = None,
        length: int = DEFAULT_ROUTE_LEN,
    ):
        """Process generator: build circuit + open stream → :class:`TorStream`."""
        circuit = yield from self.build_circuit(
            route=route, length=length, avoid_ips=(target_ip,)
        )
        yield from circuit.send_forward(BeginPayload(target_ip, target_port))
        reply = yield circuit._control.get()
        assert isinstance(reply, ConnectedPayload)
        stream = TorStream(circuit)
        circuit.stream = stream
        return stream
