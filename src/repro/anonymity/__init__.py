"""Pluggable anonymity strategies on MIC's data plane.

See docs/anonymity.md for the contract and the strategy/attack tables.
"""

from .base import (
    STRATEGIES,
    Strategy,
    format_strategy_table,
    get_strategy,
    register_strategy,
)
from .frvm import FrvmMultiplex
from .micstrategy import MicRewrite
from .tarn import TarnHopping

__all__ = [
    "STRATEGIES",
    "FrvmMultiplex",
    "MicRewrite",
    "Strategy",
    "TarnHopping",
    "format_strategy_table",
    "get_strategy",
    "register_strategy",
]
