"""Fig 9(c): overall CPU usage while running the Fig 9(a) evaluation.

Paper shape: Tor suffers extremely high CPU overhead (redundant overlay
paths + per-hop crypto); MIC shows only a narrow increase over TCP/SSL (the
extra flow-table actions on the virtual switches).
"""

from repro.bench import fig9c_cpu_usage


def test_fig9c_cpu(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: fig9c_cpu_usage(route_lengths=(1, 3, 5)), rounds=1, iterations=1
    )
    save_table("fig9c_cpu", result)

    tcp = result.value("TCP", "cpu")
    ssl = result.value("SSL", "cpu")
    mic = result.value("MIC", "cpu")
    tor = result.value("Tor", "cpu")

    # Tor burns several times the CPU of every non-overlay protocol.
    assert tor > 2 * max(tcp, ssl, mic)
    # MIC's increase over TCP is modest (well under SSL+Tor territory).
    assert mic < tcp * 1.8
    # SSL costs more CPU than plain TCP (bulk AES).
    assert ssl > tcp
