#!/usr/bin/env python3
"""Quickstart: anonymous communication with MIC in five steps.

Builds the paper's evaluation fabric (a 4-ary fat-tree: 20 switches, 16
hosts), starts the Mimic Controller, and sends a message from Alice (h1) to
Bob (h16) through a mimic channel.  Along the way it prints what the
network actually saw — fake addresses everywhere except the first and last
segments.

Run:  python examples/quickstart.py
"""

from repro.core import MicEndpoint, MicServer, MimicController
from repro.net import Network, fat_tree
from repro.sdn import Controller, L3ShortestPathApp


def main() -> None:
    # 1. Build the fabric and the control plane.
    net = Network(fat_tree(4), seed=42)
    ctrl = Controller(net)
    mic = ctrl.register(MimicController())
    ctrl.register(L3ShortestPathApp())
    print(f"fabric: {net.topo!r}")

    # 2. Bob runs a MIC-aware server on port 80.
    server = MicServer(net.host("h16"), 80)

    # 3. Alice gets a MIC endpoint (the paper's user-end module).
    alice = MicEndpoint(net.host("h1"), mic)

    transcript = {}

    def alice_side():
        # 4. One call establishes the mimic channel: encrypted request to
        #    the MC, per-m-flow entry addresses back, TCP through the fabric.
        stream = yield from alice.connect("h16", service_port=80, n_mns=3)
        grant_info = (
            f"channel {stream.channel_id} via entry "
            f"{stream.conns[0].remote_ip}:{stream.conns[0].remote_port}"
        )
        transcript["grant"] = grant_info
        stream.send(b"hello from alice")
        transcript["reply"] = yield from stream.recv_exactly(17)

    def bob_side():
        stream = yield server.accept()
        data = yield from stream.recv_exactly(16)
        # Bob sees a mimic source address, not Alice's.
        transcript["bob_saw"] = str(stream.conns[0].remote_ip)
        stream.send(b"hello from bob!!!")

    net.sim.process(alice_side())
    net.sim.process(bob_side())
    net.run(until=10.0)

    # 5. Inspect the outcome.
    plan = next(iter(mic.channels.values())).flows[0]
    print(f"alice connected:   {transcript['grant']}")
    print(f"walk:              {' -> '.join(plan.walk)}")
    print(f"mimic nodes:       {', '.join(plan.mn_names)}")
    print(f"bob saw source:    {transcript['bob_saw']} "
          f"(alice is {net.host('h1').ip})")
    print(f"alice got reply:   {transcript['reply'].decode()}")

    real_pair = {str(net.host("h1").ip), str(net.host("h16").ip)}
    leaks = [
        rec.node
        for rec in net.trace.by_category("switch.fwd")
        if {rec["src_ip"], rec["dst_ip"]} == real_pair
    ]
    print(f"switches that saw the real (alice, bob) pair together: {leaks or 'none'}")


if __name__ == "__main__":
    main()
