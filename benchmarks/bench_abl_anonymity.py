"""Abl-7: anonymity-set sizes across the fabric, by topology scale.

"A flow can mimic flows of other participants" — but only as many as route
past the observation point.  This bench quantifies the per-link sender/
receiver anonymity sets MIC's plausibility restrictions allow, averaged
over interior fabric links, for growing fabrics.
"""

import statistics

from repro.attacks import link_anonymity
from repro.bench import FigureResult
from repro.core import AddressRestrictions
from repro.net import fat_tree, leaf_spine
from repro.sdn import TopologyView

FABRICS = {
    "fat-tree k=4 (16 hosts)": lambda: fat_tree(4),
    "fat-tree k=6 (54 hosts)": lambda: fat_tree(6),
    "leaf-spine 4x8 (32 hosts)": lambda: leaf_spine(4, 8, 4),
}


def fabric_stats(topo):
    view = TopologyView(topo)
    restrictions = AddressRestrictions(view)
    senders, receivers = [], []
    for u, v in topo.graph.edges:
        if topo.kind(u) != "switch" or topo.kind(v) != "switch":
            continue  # host access links are degenerate by design
        for a, b in ((u, v), (v, u)):
            report = link_anonymity(restrictions, a, b)
            if report.pair_count == 0:
                continue
            senders.append(report.sender_set_size)
            receivers.append(report.receiver_set_size)
    return statistics.mean(senders), statistics.mean(receivers)


def run_ablation():
    result = FigureResult(
        "Abl-7", "mean interior-link anonymity-set size by fabric",
        x_label="fabric", y_label="candidate hosts", unit="",
    )
    for name, builder in FABRICS.items():
        topo = builder()
        mean_s, mean_r = fabric_stats(topo)
        result.add("sender set", name, mean_s)
        result.add("receiver set", name, mean_r)
        result.add("hosts", name, len(topo.hosts()))
    return result


def test_abl_anonymity(benchmark, save_table):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_table("abl_anonymity", result)

    for name in FABRICS:
        # Interior links always mix several candidates in both roles.
        assert result.value("sender set", name) > 2
        assert result.value("receiver set", name) > 2
    # Anonymity scales with fabric size.
    assert (
        result.value("sender set", "fat-tree k=6 (54 hosts)")
        > result.value("sender set", "fat-tree k=4 (16 hosts)")
    )
