"""Perfetto exporter: valid Chrome trace-event JSON with sound semantics.

Schema-checks the document the acceptance criteria require: every event
carries the mandatory trace-event keys, complete slices have non-negative
microsecond durations, flow arrows open and close per content tag, and
metadata names every track.
"""

import json

from repro.core import deploy_mic
from repro.obs import to_perfetto, write_perfetto, journeys_to_json

_VALID_PH = {"X", "i", "M", "s", "t", "f"}


def _norm(doc):
    """JSON-normalize (header tuples become lists, as on disk)."""
    return json.loads(json.dumps(doc))


def _traced_run(decoys=0, seed=13):
    dep = deploy_mic(seed=seed, journey=True)
    server = dep.server("h16", 80)
    alice = dep.endpoint("h1")

    def client():
        stream = yield from alice.connect(
            "h16", service_port=80, n_mns=3, decoys=decoys
        )
        stream.send(b"p" * 150)
        yield from stream.recv_exactly(150)

    def srv():
        stream = yield server.accept()
        data = yield from stream.recv_exactly(150)
        stream.send(data)

    dep.sim.process(client())
    dep.sim.process(srv())
    dep.run_for(5.0)
    return dep


def test_trace_event_schema():
    dep = _traced_run()
    doc = to_perfetto(dep.journey)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    assert events
    for ev in events:
        assert ev["ph"] in _VALID_PH
        assert isinstance(ev["pid"], int) and ev["pid"] >= 1
        assert isinstance(ev["tid"], int) and ev["tid"] >= 0
        assert isinstance(ev["name"], str) and ev["name"]
        if ev["ph"] != "M":
            assert isinstance(ev["ts"], float) and ev["ts"] >= 0.0
        if ev["ph"] == "X":
            assert ev["dur"] >= 0.0
        if ev["ph"] == "i":
            assert ev["s"] == "t"  # thread-scoped instants
        if ev["ph"] in ("s", "t", "f"):
            assert "id" in ev
    # the document is JSON-serializable and stable under round-trips
    once = _norm(doc)
    assert _norm(once) == once


def test_tracks_are_named_and_deterministic():
    dep = _traced_run()
    doc = to_perfetto(dep.journey)
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    procs = {e["args"]["name"]: e["pid"] for e in meta
             if e["name"] == "process_name"}
    # one named process track per touched location, unique pids
    assert "h1" in procs and "h16" in procs
    assert len(set(procs.values())) == len(procs)
    # every non-metadata event points at a named pid
    for ev in doc["traceEvents"]:
        if ev["ph"] != "M":
            assert ev["pid"] in set(procs.values())
    # thread lanes are named after content tags
    threads = [e for e in meta if e["name"] == "thread_name"]
    assert all(e["args"]["name"].startswith("tag ") for e in threads)
    # deterministic: exporting the same recorder twice is identical
    assert to_perfetto(dep.journey) == doc


def test_switch_hops_and_rewrites_render_as_slices():
    dep = _traced_run()
    slices = [e for e in to_perfetto(dep.journey)["traceEvents"]
              if e["ph"] == "X"]
    hops = [e for e in slices if e["name"] in ("forward", "rewrite+forward")]
    assert hops
    rewrites = [e for e in hops if e["name"] == "rewrite+forward"]
    assert rewrites  # the MN hops annotate their rewrite
    for e in rewrites:
        assert " -> " in e["args"]["rewrite"]
        assert "cookie" in e["args"]
        assert e["args"]["ingress_header"] != e["args"]["egress_header"]
    transits = [e for e in slices if e["name"] == "transit"]
    assert transits
    for e in transits:
        parts = (e["args"]["queue_wait_us"] + e["args"]["serialize_us"]
                 + e["args"]["propagation_us"])
        assert abs(e["dur"] - parts) < 1e-6


def test_flow_arrows_stitch_each_delivered_tag():
    dep = _traced_run()
    events = to_perfetto(dep.journey)["traceEvents"]
    starts = {e["id"] for e in events if e["ph"] == "s"}
    finishes = {e["id"] for e in events if e["ph"] == "f"}
    assert starts  # arrows exist
    # every finish has a matching start (Perfetto drops dangling arrows)
    assert finishes <= starts
    # delivered journeys finish their arrow
    delivered = {
        tag for tag, j in dep.journey.journeys_by_content_tag().items()
        if j.delivered_to() and j.by_kind("switch.ingress")
    }
    assert delivered <= finishes


def test_exports_from_dump_document_and_file(tmp_path):
    dep = _traced_run(decoys=2)
    # dict source (the --dump document) renders the same as the recorder
    # (up to JSON's tuple→list normalization, as on disk)
    doc_from_dump = to_perfetto(journeys_to_json(dep.journey))
    assert _norm(doc_from_dump) == _norm(to_perfetto(dep.journey))
    out = tmp_path / "trace.json"
    write_perfetto(dep.journey, str(out))
    loaded = json.loads(out.read_text())
    assert loaded == _norm(doc_from_dump)
