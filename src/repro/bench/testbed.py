"""The evaluation testbed (Sec VI).

Recreates the paper's platform: a 4-ary fat-tree (twenty 4-port switches,
16 hosts), a controller running the MIC app plus baseline L3 routing, and a
local Tor deployment (directory + relays on a subset of hosts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core import MicEndpoint, MicServer, MimicController
from ..net import Network, NetParams, Topology, fat_tree
from ..obs import JourneyRecorder, Observer
from ..sdn import Controller, L3ShortestPathApp
from ..tor import TorClient, TorDirectory, TorRelay, TorRelayParams
from ..transport import SslStack, TcpStack

__all__ = ["Testbed"]

#: hosts that run Tor relays in the benches (pod-1 and pod-2 hosts, keeping
#: h1 (client side) and h13..h16 (server side) free)
DEFAULT_RELAY_HOSTS = ("h5", "h6", "h7", "h8", "h9", "h10", "h11")


@dataclass
class Testbed:
    """A fully wired evaluation platform."""

    __test__ = False  # not a pytest test class despite the name

    net: Network
    ctrl: Controller
    mic: MimicController
    l3: L3ShortestPathApp
    directory: TorDirectory
    relays: list[TorRelay]
    #: attached observer when created with ``observe=True``, else None
    obs: Optional[Observer] = None
    #: attached journey recorder when created with ``journey=True``, else None
    journey: Optional[JourneyRecorder] = None

    @classmethod
    def create(
        cls,
        seed: int = 0,
        topo: Optional[Topology] = None,
        params: Optional[NetParams] = None,
        relay_hosts: Sequence[str] = DEFAULT_RELAY_HOSTS,
        pre_wire: bool = True,
        tor_params: Optional[TorRelayParams] = None,
        mic_kwargs: Optional[dict] = None,
        observe: bool = False,
        journey: bool = False,
        journey_kwargs: Optional[dict] = None,
    ) -> "Testbed":
        net = Network(topo or fat_tree(4), params=params or NetParams(), seed=seed)
        ctrl = Controller(net)
        mic = ctrl.register(MimicController(**(mic_kwargs or {})))
        l3 = ctrl.register(L3ShortestPathApp())
        obs = Observer.attach(net, mic=mic, controller=ctrl) if observe else None
        rec = None
        if journey:
            rec = JourneyRecorder.attach(net, **(journey_kwargs or {}))
            if obs is not None:
                obs.journey = rec
        if pre_wire:
            l3.wire_all_pairs()
            net.run()  # let installs finish before any measurement
        directory = TorDirectory()
        relay_params = tor_params or TorRelayParams()
        relays = [
            TorRelay(net.host(h), directory, params=relay_params)
            for h in relay_hosts
        ]
        return cls(net, ctrl, mic, l3, directory, relays, obs=obs, journey=rec)

    # -- convenience constructors for protocol endpoints --------------------
    def tcp_stack(self, host_name: str) -> TcpStack:
        """A fresh TCP stack on a host."""
        return TcpStack(self.net.host(host_name))

    def ssl_stack(self, host_name: str) -> SslStack:
        """A fresh SSL-over-TCP stack on a host."""
        return SslStack(self.tcp_stack(host_name))

    def mic_endpoint(self, host_name: str) -> MicEndpoint:
        """A MIC user-end module on a host."""
        return MicEndpoint(self.net.host(host_name), self.mic)

    def mic_server(self, host_name: str, port: int) -> MicServer:
        """A MIC server on a host/port."""
        return MicServer(self.net.host(host_name), port)

    def tor_client(self, host_name: str) -> TorClient:
        """A Tor onion proxy on a host."""
        return TorClient(self.net.host(host_name), self.directory)

    def run(self, until=None):
        """Run the testbed's simulator."""
        return self.net.run(until=until)

    def reset_meters(self) -> None:
        """Zero all CPU meters (network + MC)."""
        self.net.reset_cpu_meters()
        self.mic.cpu_busy_s = 0.0
