"""SDN switch node.

The data path: receive → pipeline delay (plus a per-rewrite surcharge so
MIC's extra set-field "actions" cost something, per Sec VI-B) → flow-table
classification → emit / punt.  Table misses are punted to the controller,
OVS-style, through the control channel the controller registers at
connection time.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Simulator, TraceLog
from .flowtable import FlowTable, PopMpls, PushMpls, SetField
from .node import Node
from .packet import Packet
from .params import NetParams

__all__ = ["Switch", "SwitchDownError"]


class SwitchDownError(RuntimeError):
    """A flow-mod reached a switch whose chassis is down (crashed)."""

#: callback type the controller registers: (switch, packet, in_port) -> None
PacketInHandler = Callable[["Switch", Packet, int], None]


def _rewrite_count(actions) -> int:
    return sum(1 for a in actions if isinstance(a, (SetField, PushMpls, PopMpls)))


class Switch(Node):
    """An OpenFlow switch with one flow table and a group table."""

    kind = "switch"

    def __init__(self, sim: Simulator, trace: TraceLog, name: str, params: NetParams):
        super().__init__(sim, trace, name, params)
        self.table = FlowTable(max_entries=params.switch_table_capacity)
        self._packet_in: Optional[PacketInHandler] = None
        self.mirror_taps: list[Callable[[Packet, int, str], None]] = []
        self.packets_forwarded = 0
        self.packets_punted = 0
        #: False while the switch is crashed: the table is wiped, arriving
        #: packets blackhole, and nothing is punted to the controller
        self.alive = True
        self.crashes = 0
        self.packets_dropped_dead = 0

    # -- controller wiring -------------------------------------------------
    def connect_controller(self, handler: PacketInHandler) -> None:
        """Register the controller's packet-in handler."""
        self._packet_in = handler

    # -- observation (the adversary's port-mirroring hook, Sec III-B) ------
    def add_mirror_tap(self, tap: Callable[[Packet, int, str], None]) -> None:
        """Register a tap invoked as ``tap(packet, port, direction)`` with
        direction ``"in"`` or ``"out"`` — models a compromised switch or an
        enabled mirror port feeding an IDS."""
        self.mirror_taps.append(tap)

    def _mirror(self, packet: Packet, port: int, direction: str) -> None:
        for tap in self.mirror_taps:
            tap(packet, port, direction)

    # -- crash / reboot ------------------------------------------------------
    def crash(self) -> int:
        """Lose all volatile state: flow table, group table, lookup cache.

        Models a switch reboot's blackout phase — the chassis is dead until
        :meth:`reboot`, so packets arriving meanwhile are dropped on the
        floor and nothing reaches the controller.  Returns the number of
        flow entries lost.
        """
        self.alive = False
        self.crashes += 1
        return self.table.clear()

    def reboot(self) -> None:
        """Come back up with empty tables (the controller re-syncs rules)."""
        self.alive = True

    # -- data path -----------------------------------------------------------
    def receive(self, packet: Packet, in_port: int) -> None:
        """Data-path entry: mirror, delay, then classify."""
        if not self.alive:
            self.packets_dropped_dead += 1
            self.trace.emit(
                self.sim.now, "switch.dead_drop", self.name, uid=packet.uid
            )
            return
        self._mirror(packet, in_port, "in")
        if self.journey is not None:
            self.journey.on_switch_ingress(self, packet, in_port)
        entry = self.table.lookup(packet, in_port)
        rewrites = _rewrite_count(entry.actions) if entry else 0
        delay = (
            self.params.switch_forward_delay_s
            + rewrites * self.params.setfield_delay_s
        )
        self.cpu.consume(
            self.params.switch_forward_cpu_s + rewrites * self.params.setfield_cpu_s
        )
        self.sim.call_later(delay, lambda: self._classify(packet, in_port))

    def _classify(self, packet: Packet, in_port: int) -> None:
        if not self.alive:
            # Crashed mid-pipeline: the packet dies with the chassis.
            self.packets_dropped_dead += 1
            self.trace.emit(
                self.sim.now, "switch.dead_drop", self.name, uid=packet.uid
            )
            return
        packet.ttl -= 1
        if packet.ttl <= 0:
            self.trace.emit(self.sim.now, "switch.ttl_expired", self.name, uid=packet.uid)
            if self.journey is not None:
                self.journey.on_ttl_expired(self, packet, in_port)
            return
        pre = self.journey.pre_apply(packet) if self.journey is not None else None
        emissions, to_controller, entry = self.table.apply(packet, in_port)
        if entry is None:
            self.packets_punted += 1
            self.trace.emit(
                self.sim.now,
                "switch.miss",
                self.name,
                uid=packet.uid,
                src_ip=str(packet.ip_src),
                dst_ip=str(packet.ip_dst),
            )
            if self.journey is not None:
                self.journey.on_switch_miss(self, packet, in_port)
            self._punt(packet, in_port)
            return
        entry.last_hit_s = self.sim.now
        if pre is not None:
            self.journey.on_switch_applied(
                self, packet, in_port, entry, pre, emissions
            )
        if to_controller:
            self._punt(packet, in_port)
        for port, out_pkt in emissions:
            self.packets_forwarded += 1
            self._mirror(out_pkt, port, "out")
            self.trace.emit(
                self.sim.now,
                "switch.fwd",
                self.name,
                uid=out_pkt.uid,
                content_tag=out_pkt.content_tag,
                in_port=in_port,
                out_port=port,
                src_ip=str(out_pkt.ip_src),
                dst_ip=str(out_pkt.ip_dst),
                mpls=out_pkt.mpls,
                size=out_pkt.size,
            )
            self.transmit(out_pkt, port)

    def _punt(self, packet: Packet, in_port: int) -> None:
        if self._packet_in is None or not self.alive:
            return  # no controller (or a dead one's chassis): drop
        handler = self._packet_in
        self.sim.call_later(
            self.params.packet_in_delay_s, lambda: handler(self, packet, in_port)
        )

    # -- controller-side management (flow-mod with install latency) ----------
    def install_later(self, entry, delay: Optional[float] = None):
        """Install a flow entry after the control-channel latency.

        Returns an event that fires when the rule is active.
        """
        from .flowtable import TableFullError

        d = self.params.flow_install_delay_s if delay is None else delay
        ev = self.sim.event()

        def _do():
            if not self.alive:
                ev.fail(SwitchDownError(f"{self.name} is down"))
                return
            try:
                self.table.install(entry)
            except TableFullError as exc:
                self.trace.emit(
                    self.sim.now, "switch.table_full", self.name,
                    entry=entry.describe(),
                )
                ev.fail(exc)
                return
            self.trace.emit(
                self.sim.now, "switch.flowmod", self.name, entry=entry.describe()
            )
            ev.succeed()

        self.sim.call_later(d, _do)
        return ev

    def install_many_later(self, entries, delay: Optional[float] = None):
        """Install a batch of flow entries after one control-channel latency.

        Models a batched flow-mod: the rules become active together, each
        feeding the table's classification index incrementally, and the
        lookup cache is invalidated once per batch rather than per rule.
        Emits one ``switch.flowmod`` trace record per entry.  On a capacity
        overflow the event fails after installing the entries that fit —
        the same observable state as issuing the installs one by one.

        Returns an event that fires when the whole batch is active.
        """
        from .flowtable import TableFullError

        d = self.params.flow_install_delay_s if delay is None else delay
        ev = self.sim.event()

        def _do():
            if not self.alive:
                ev.fail(SwitchDownError(f"{self.name} is down"))
                return
            for entry in entries:
                try:
                    self.table.install(entry)
                except TableFullError as exc:
                    self.trace.emit(
                        self.sim.now, "switch.table_full", self.name,
                        entry=entry.describe(),
                    )
                    ev.fail(exc)
                    return
                self.trace.emit(
                    self.sim.now, "switch.flowmod", self.name,
                    entry=entry.describe(),
                )
            ev.succeed()

        self.sim.call_later(d, _do)
        return ev
