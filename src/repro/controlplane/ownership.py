"""Deterministic switch-ownership for the sharded Mimic Controller.

One MC computing every walk and serializing every flow-mod is the
scalability ceiling the paper itself flags (Sec VI-C: O(|F|) routing
cost through a single controller).  The shard layer splits that work
across N controller shards, and this module answers its one central
question — *which shard owns a switch* — with rendezvous (highest-random-
weight) hashing:

* ``weight(shard, switch)`` is SHA-256 over ``"{seed}:{shard}:{switch}"``,
  so the map depends only on the seed and the two ids — never on
  ``PYTHONHASHSEED``, dict order, or process identity.  Every shard (and
  every test) can re-derive the full map locally; there is no central
  table to replicate, which is exactly the property failover leans on.
* HRW gives minimal disruption: removing a shard from the ``alive`` set
  reassigns *only* the switches that shard owned; every surviving
  assignment is unchanged.  That keeps a shard crash from churning
  ownership (and therefore repair responsibility) fleet-wide.
* With one shard the map is trivially constant, which is what keeps
  single-shard mode byte-identical to the unsharded controller.

The DHT-style peer routing in p2p-project and Quantum's plugin/agent
split are the architectural exemplars: a logically central policy whose
enforcement (and here, computation) is distributed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

__all__ = [
    "OwnershipMap",
    "PartitionedFlowIdAllocator",
    "CONTROLPLANE_CONTRACT",
    "format_controlplane_table",
]


class OwnershipMap:
    """Seeded rendezvous-hash assignment of switch ids to shard ids."""

    def __init__(self, n_shards: int, seed: int = 0):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self.seed = seed

    def weight(self, shard: int, switch: str) -> int:
        """The HRW weight of ``shard`` for ``switch`` (independent of
        hash randomization — SHA-256 over the seeded id pair)."""
        key = f"{self.seed}:{shard}:{switch}".encode()
        return int.from_bytes(hashlib.sha256(key).digest()[:8], "big")

    def owner(self, switch: str, alive: Optional[Iterable[int]] = None) -> int:
        """The owning shard among ``alive`` (default: all shards)."""
        candidates = sorted(alive) if alive is not None else range(self.n_shards)
        best = -1
        best_weight = -1
        for shard in candidates:
            if not 0 <= shard < self.n_shards:
                raise ValueError(f"shard {shard} out of range")
            w = self.weight(shard, switch)
            if w > best_weight:
                best, best_weight = shard, w
        if best < 0:
            raise ValueError("no live shard to own " + repr(switch))
        return best

    def partition(
        self, switches: Sequence[str], alive: Optional[Iterable[int]] = None
    ) -> dict[int, list[str]]:
        """Switches grouped by owning shard (sorted, covering input order
        independent)."""
        alive_list = sorted(alive) if alive is not None else list(range(self.n_shards))
        out: dict[int, list[str]] = {shard: [] for shard in alive_list}
        for sw in sorted(switches):
            out[self.owner(sw, alive_list)].append(sw)
        return out


class PartitionedFlowIdAllocator:
    """One shard's slice of the flow-ID space: ids ≡ shard (mod n_shards).

    Mirrors :class:`repro.core.collision.FlowIdAllocator` exactly —
    LIFO recycling, sequential fresh ids, the same exhaustion error — so a
    single-shard partition (``shard=0, n_shards=1``) allocates the
    byte-identical 0, 1, 2, … sequence.  Disjoint residue classes mean no
    two shards can ever hand out the same live flow ID without any
    cross-shard coordination, which is what lets establishment proceed on
    N shards in parallel while MAGA's uniqueness argument (Sec IV-B3)
    still holds globally.
    """

    def __init__(self, n_values: int, shard: int = 0, n_shards: int = 1):
        if n_values < 1:
            raise ValueError("need a positive id space")
        if not 0 <= shard < n_shards:
            raise ValueError(f"shard {shard} outside 0..{n_shards - 1}")
        self.n_values = n_values
        self.shard = shard
        self.n_shards = n_shards
        self._next = shard
        self._recycled: list[int] = []
        self._live: set[int] = set()

    def allocate(self) -> int:
        """A unique ID among the currently live ones, from this partition."""
        if self._recycled:
            fid = self._recycled.pop()
        elif self._next < self.n_values:
            fid = self._next
            self._next += self.n_shards
        else:
            raise RuntimeError(
                f"flow-ID space exhausted ({self.n_values} live m-flows)"
            )
        self._live.add(fid)
        return fid

    def release(self, fid: int) -> None:
        """Recycle a live ID for reuse."""
        if fid not in self._live:
            raise ValueError(f"flow id {fid} is not live")
        self._live.remove(fid)
        self._recycled.append(fid)

    @property
    def live_count(self) -> int:
        """Number of currently live IDs."""
        return len(self._live)

    def is_live(self, fid: int) -> bool:
        """True if the ID is currently live."""
        return fid in self._live


# ----------------------------------------------------------------------
# Doc-diffed contract (docs/controlplane.md embeds the rendered table)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ControlplaneRule:
    """One row of the ownership-map / failover contract."""

    aspect: str
    rule: str
    on_shard_crash: str


CONTROLPLANE_CONTRACT: tuple[ControlplaneRule, ...] = (
    ControlplaneRule(
        "switch ownership",
        "`owner(switch) = argmax_shard sha256(seed:shard:switch)` over the "
        "alive set — re-derivable anywhere from `(seed, n_shards, alive)`, "
        "independent of `PYTHONHASHSEED` and insertion order",
        "HRW re-ranks only the dead shard's switches; every surviving "
        "assignment is unchanged (minimal disruption)",
    ),
    ControlplaneRule(
        "channel ownership",
        "a channel lives on the shard owning its initiator's edge switch; "
        "`establish`/`shutdown`/`notify` requests punted by that switch "
        "route there",
        "the surviving owner of the edge switch adopts the channel, its "
        "compiled intents, and its parked flows — channels are never killed",
    ),
    ControlplaneRule(
        "flow-ID namespace",
        "shard *i* of *N* allocates ids ≡ *i* (mod *N*): disjoint residue "
        "classes keep MAGA uniqueness global with zero coordination",
        "releases route back to the home partition by residue, so a "
        "rejoined shard's allocator state is still exact",
    ),
    ControlplaneRule(
        "labels / MN hashes",
        "`LabelSpace`, per-MN `ReversibleHash` spaces, the collision "
        "registry and the hidden-service map are built once on the "
        "canonical `mic-controller` stream and shared by reference",
        "nothing to rebuild: the namespace is shard-independent state",
    ),
    ControlplaneRule(
        "install fan-out",
        "every flow-mod routes to the shard owning its target switch, so a "
        "multi-segment walk's installs pipeline across shards; under "
        "`cpu_model=\"serialized\"` each shard's mods queue on its own CPU",
        "in-flight installs of the dead shard settle or fail through the "
        "acked-install machinery; the adopter's re-repair re-drives them",
    ),
    ControlplaneRule(
        "repair / park / resync",
        "fault events fan out to alive shards; each repairs, parks, and "
        "resyncs only the channels it owns",
        "flows mid-repair or parked on the dead shard are re-scheduled on "
        "the adopter from the stored compiled intents (PR 5/PR 9)",
    ),
    ControlplaneRule(
        "rejoin",
        "a rejoined shard becomes eligible for new ownership immediately",
        "adopted channels do not fail back — they stay with the adopter "
        "until teardown, avoiding a second migration window",
    ),
    ControlplaneRule(
        "single-shard mode",
        "`n_shards=1` routes everything to shard 0, whose attach path, RNG "
        "stream and allocator sequence are the unsharded controller's — "
        "byte-identical, golden-tested",
        "no failover possible; `ShardCrash` on a 1-shard cluster is a "
        "schedule validation error",
    ),
)


def format_controlplane_table(
    rows: tuple[ControlplaneRule, ...] = CONTROLPLANE_CONTRACT,
) -> str:
    """The markdown ownership/failover contract table docs embed."""
    lines = [
        "| aspect | rule | on shard crash |",
        "| --- | --- | --- |",
    ]
    for row in rows:
        lines.append(f"| {row.aspect} | {row.rule} | {row.on_shard_crash} |")
    return "\n".join(lines) + "\n"
