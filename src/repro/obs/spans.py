"""Span-style tracing for control-plane operations.

A span is one completed operation with sim-time ``start``/``end`` and a
free-form label set — channel setup, a planning pass, a rule-install batch.
Spans are recorded on *finish*: an operation that raises before finishing
leaves nothing behind (the record would be a lie about a duration that
never completed).

Instrumented code never checks whether observation is enabled — it asks
:func:`begin` for a span and calls ``finish()``; with no observer attached
it gets :data:`NULL_SPAN`, whose methods do nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["SpanRecord", "Span", "SpanLog", "NULL_SPAN", "begin"]


@dataclass(frozen=True)
class SpanRecord:
    """One completed operation: ``[start_s, end_s]`` plus labels.

    ``duration_s`` usually equals ``end_s - start_s``; drivers that time a
    sum of disjoint windows (e.g. MIC-SSL setup = MIC connect + TLS
    handshake, excluding the untimed acceptor wait between them) may record
    a smaller duration.
    """

    name: str
    start_s: float
    end_s: float
    duration_s: float
    labels: tuple[tuple[str, str], ...]

    def label(self, key: str) -> Optional[str]:
        """One label's value, or None."""
        for k, v in self.labels:
            if k == key:
                return v
        return None


class Span:
    """An in-flight operation; call :meth:`finish` to record it."""

    __slots__ = ("_log", "_sim", "name", "start_s", "_labels")

    def __init__(self, log: "SpanLog", sim, name: str, labels: dict[str, Any]):
        self._log = log
        self._sim = sim
        self.name = name
        self.start_s = sim.now
        self._labels = labels

    def finish(self, **extra: Any) -> None:
        """Record the span, ending now; ``extra`` labels are merged in."""
        self._log.record(
            self.name, self.start_s, self._sim.now, **{**self._labels, **extra}
        )


class _NullSpan:
    """The do-nothing span handed out when no observer is attached."""

    __slots__ = ()

    def finish(self, **extra: Any) -> None:
        """Ignore the finish (observation is disabled)."""


#: shared no-op span — begin() returns this when the observer is None
NULL_SPAN = _NullSpan()


class SpanLog:
    """Append-only store of completed spans."""

    def __init__(self) -> None:
        self.records: list[SpanRecord] = []

    def record(
        self,
        name: str,
        start_s: float,
        end_s: float,
        duration_s: Optional[float] = None,
        **labels: Any,
    ) -> SpanRecord:
        """Append one completed span (duration defaults to end - start)."""
        rec = SpanRecord(
            name=name,
            start_s=start_s,
            end_s=end_s,
            duration_s=(end_s - start_s) if duration_s is None else duration_s,
            labels=tuple(sorted((k, str(v)) for k, v in labels.items())),
        )
        self.records.append(rec)
        return rec

    # -- queries ----------------------------------------------------------
    def by_name(self, name: str, **criteria: Any) -> list[SpanRecord]:
        """All spans with a name whose labels match the criteria."""
        want = {k: str(v) for k, v in criteria.items()}
        return [
            r
            for r in self.records
            if r.name == name
            and all(r.label(k) == v for k, v in want.items())
        ]

    def last(self, name: str, **criteria: Any) -> SpanRecord:
        """The most recently recorded matching span (KeyError if none)."""
        found = self.by_name(name, **criteria)
        if not found:
            raise KeyError(f"no span {name!r} matching {criteria}")
        return found[-1]

    def durations(self, name: str, **criteria: Any) -> list[float]:
        """Durations of every matching span, in record order."""
        return [r.duration_s for r in self.by_name(name, **criteria)]

    def total(self, name: str, **criteria: Any) -> float:
        """Summed duration over matching spans."""
        return sum(self.durations(name, **criteria))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


def begin(observer, name: str, **labels: Any):
    """Open a span on ``observer`` (or :data:`NULL_SPAN` if it is None).

    The one call instrumented code makes: ``span = begin(self.obs, ...)``
    followed by ``span.finish()`` — no enabled/disabled branching at the
    call site beyond this helper's None check.
    """
    if observer is None:
        return NULL_SPAN
    return Span(observer.spans, observer.sim, name, labels)
