"""Unit tests for the determinism lint, plus the enforcement test that
keeps ``src/`` clean (the same gate CI runs)."""

import pathlib
import textwrap

from repro.analysis.baseline import Baseline
from repro.analysis.lint import lint_paths, lint_source, run_lint

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC_ROOT = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "lint-baseline.json"


def rules_of(source):
    return [f.rule for f in lint_source(textwrap.dedent(source))]


class TestWallClock:
    def test_time_time_flagged(self):
        assert rules_of("""
            import time
            t = time.time()
        """) == ["wall-clock"]

    def test_perf_counter_flagged(self):
        assert "wall-clock" in rules_of("""
            import time
            t0 = time.perf_counter()
        """)

    def test_from_import_alias_resolved(self):
        assert "wall-clock" in rules_of("""
            from time import perf_counter as pc
            t0 = pc()
        """)

    def test_datetime_now_flagged(self):
        assert "wall-clock" in rules_of("""
            import datetime
            now = datetime.datetime.now()
        """)

    def test_pragma_suppresses(self):
        assert rules_of("""
            import time
            t = time.time()  # lint: allow(wall-clock)
        """) == []

    def test_sim_now_not_flagged(self):
        assert rules_of("""
            def f(sim):
                return sim.now
        """) == []


class TestUnseededRandom:
    def test_module_level_draw_flagged(self):
        assert rules_of("""
            import random
            x = random.random()
        """) == ["unseeded-random"]

    def test_import_alias_resolved(self):
        assert "unseeded-random" in rules_of("""
            import random as rnd
            x = rnd.randint(0, 9)
        """)

    def test_seeded_random_instance_allowed(self):
        assert rules_of("""
            import random
            rng = random.Random(42)
            x = rng.random()
        """) == []

    def test_unseeded_random_instance_flagged(self):
        assert "unseeded-random" in rules_of("""
            import random
            rng = random.Random()
        """)

    def test_numpy_global_draw_flagged(self):
        assert "unseeded-random" in rules_of("""
            import numpy
            x = numpy.random.rand(3)
        """)

    def test_numpy_seeded_generator_allowed(self):
        assert rules_of("""
            import numpy
            rng = numpy.random.default_rng(7)
        """) == []

    def test_system_random_always_flagged(self):
        assert "unseeded-random" in rules_of("""
            import random
            rng = random.SystemRandom(42)
        """)


class TestSetIteration:
    def test_for_over_set_call_flagged(self):
        assert rules_of("""
            def f(items):
                for x in set(items):
                    print(x)
        """) == ["set-iteration"]

    def test_for_over_set_literal_flagged(self):
        assert "set-iteration" in rules_of("""
            for x in {1, 2, 3}:
                print(x)
        """)

    def test_comprehension_over_set_flagged(self):
        assert "set-iteration" in rules_of("""
            def f(items):
                return [x for x in set(items)]
        """)

    def test_sorted_set_allowed(self):
        assert rules_of("""
            def f(items):
                for x in sorted(set(items)):
                    print(x)
        """) == []

    def test_dict_fromkeys_allowed(self):
        assert rules_of("""
            def f(items):
                for x in dict.fromkeys(items):
                    print(x)
        """) == []

    def test_pragma_suppresses(self):
        assert rules_of("""
            def f(items):
                for x in set(items):  # lint: allow(set-iteration)
                    print(x)
        """) == []


class TestEnforcement:
    def test_src_tree_is_clean_against_baseline(self):
        """The repository's own code passes the full rule registry against
        the committed baseline (the gate `make lint` and CI enforce): no
        new findings, no stale grandfathered entries."""
        run = run_lint([str(SRC_ROOT)], baseline=Baseline.load(BASELINE))
        assert run.findings == [], "\n".join(f.format() for f in run.findings)
        assert run.stale == [], "\n".join(e.format() for e in run.stale)

    def test_baseline_entries_all_justified(self):
        """Every grandfathered finding carries a non-empty justification."""
        base = Baseline.load(BASELINE)
        assert base.entries, "baseline should grandfather the trace sinks"
        for entry in base.entries:
            assert entry.note.strip(), f"missing note: {entry.format()}"

    def test_findings_are_line_ordered_and_formatted(self):
        findings = lint_source(
            "import time\na = time.time()\nb = time.monotonic()\n",
            path="mod.py",
        )
        assert [f.line for f in findings] == [2, 3]
        assert findings[0].format().startswith("mod.py:2: error[wall-clock]")
